// Package registry is the single catalog of analysable protocol targets.
//
// Each protocol package contributes one Descriptor per workload variant via
// Register (typically from an init function); cmd/achilles, cmd/benchtab,
// cmd/trojan-inject, internal/experiments and the conformance suite all
// resolve targets from here instead of hard-coding per-protocol switches.
// Adding a workload is therefore a one-package drop-in: write the NL models,
// the ground-truth oracle and the fuzz generator, call Register, and every
// driver, experiment and standing test picks the target up by name.
//
// A Descriptor bundles everything Achilles knows about one target:
//
//   - Target: the NL server/client sources compiled into a core.Target
//     (message layout, exec options, shared state);
//   - Analysis: default analysis budgets/options for the target;
//   - DefaultState: the canonical concrete world for local state, used by
//     the fuzz baseline and the oracle when no per-report world is known;
//   - IsTrojan / ClassKey: the ground-truth Trojan oracle and class
//     bucketing used by the §6.2 baselines and the cross-validation suite;
//   - ImplAccepts: replay of a message through the protocol's concrete Go
//     implementation — the §4 soundness guard as code;
//   - Fuzz: the black-box fuzz generator and default campaign size.
package registry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"achilles/internal/core"
	"achilles/internal/fuzz"
	"achilles/internal/wire"
)

// State is a concrete world for protocol-local state: variable name (as
// declared in the NL model, without the engine's "state_" prefix) to value.
type State map[string]int64

// FuzzSpec configures the black-box fuzzing baseline for a target.
type FuzzSpec struct {
	// Generator produces one random message.
	Generator fuzz.Generator
	// Tests is the default campaign size.
	Tests int
}

// Descriptor is one registered protocol target.
type Descriptor struct {
	// Name is the unique registry key (e.g. "fsp", "raft").
	Name string
	// Aliases are additional lookup keys kept for CLI compatibility.
	Aliases []string
	// Summary is a one-line description shown by listing commands.
	Summary string
	// Target builds a fresh core.Target (models are recompiled per call, so
	// concurrent analyses never share mutable state).
	Target func() core.Target
	// Analysis carries the target's default analysis options (budgets,
	// verification toggles). Callers overlay Mode/Parallelism on top.
	Analysis core.AnalysisOptions
	// DefaultState is the canonical concrete world for the target's local
	// state; nil for stateless targets.
	DefaultState State
	// ExpectTrojans records whether the target carries a seeded
	// vulnerability the analysis must find (false for the -fixed variants).
	ExpectTrojans bool
	// IsTrojan is the ground-truth oracle: does the concrete message, in
	// the given state world (nil = DefaultState), belong to a Trojan class?
	// Nil when the target has no closed-form oracle.
	IsTrojan func(msg []int64, st State) bool
	// ClassKey buckets a Trojan message into its class for distinct-class
	// accounting; nil falls back to the full message rendering.
	ClassKey func(msg []int64) string
	// ImplAccepts replays the message through the protocol's concrete Go
	// implementation in the given state world (nil = DefaultState) and
	// reports whether the implementation accepted it. Nil when the target
	// has no concrete implementation.
	ImplAccepts func(msg []int64, st State) bool
	// Fuzz configures the black-box baseline; nil when the target is not
	// fuzzable.
	Fuzz *FuzzSpec
	// Wire is the lift layer bridging the target's analysis vectors and its
	// real wire format; nil for NL-only targets whose messages never leave
	// the model domain. When set, trojan vectors can be lowered to concrete
	// frame bytes and replayed through a byte-speaking implementation.
	Wire *wire.Lift
}

// ModeSet renders the target's capability set for listings: which kinds of
// evidence the registry can produce for it beyond the symbolic analysis
// every target gets. "wire" marks byte-level targets (messages lower to a
// real frame format), "oracle" a closed-form ground-truth oracle, "impl"
// concrete-implementation replay, "fuzz" a black-box baseline.
func (d Descriptor) ModeSet() string {
	modes := []string{"nl"}
	if d.Wire != nil {
		modes = append(modes, "wire")
	}
	if d.IsTrojan != nil {
		modes = append(modes, "oracle")
	}
	if d.ImplAccepts != nil {
		modes = append(modes, "impl")
	}
	if d.Fuzz != nil {
		modes = append(modes, "fuzz")
	}
	return strings.Join(modes, "+")
}

// FireDrillFunc runs a live fire drill for a target: start a concrete
// server on addr, inject every discovered Trojan, and write a report.
type FireDrillFunc func(addr string, out io.Writer) error

var (
	mu         sync.RWMutex
	byName     = map[string]*Descriptor{}
	names      []string // registration order of canonical names
	fireDrills = map[string]FireDrillFunc{}
)

// Register adds a descriptor to the registry. It panics on an empty or
// duplicate name or alias, or on a missing Target constructor — these are
// programming errors in a protocol package's init.
func Register(d Descriptor) {
	mu.Lock()
	defer mu.Unlock()
	if d.Name == "" {
		panic("registry: descriptor with empty name")
	}
	if d.Target == nil {
		panic("registry: descriptor " + d.Name + " has no Target constructor")
	}
	keys := append([]string{d.Name}, d.Aliases...)
	seen := map[string]bool{}
	for _, k := range keys {
		if _, dup := byName[k]; dup || seen[k] {
			panic("registry: duplicate target name " + k)
		}
		seen[k] = true
	}
	dd := d
	for _, k := range keys {
		byName[k] = &dd
	}
	names = append(names, d.Name)
}

// Lookup resolves a target by name or alias.
func Lookup(name string) (Descriptor, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := byName[name]
	if !ok {
		return Descriptor{}, false
	}
	return *d, true
}

// MustLookup is Lookup for names known to be registered; it panics with the
// available names otherwise.
func MustLookup(name string) Descriptor {
	d, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("registry: unknown target %q (have %v)", name, Names()))
	}
	return d
}

// All returns every registered descriptor, sorted by canonical name.
func All() []Descriptor {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Descriptor, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted canonical target names.
func Names() []string {
	var out []string
	for _, d := range All() {
		out = append(out, d.Name)
	}
	return out
}

// RegisterFireDrill attaches a live fire drill to a registered target.
func RegisterFireDrill(name string, fn FireDrillFunc) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := byName[name]; !ok {
		panic("registry: fire drill for unregistered target " + name)
	}
	if _, dup := fireDrills[name]; dup {
		panic("registry: duplicate fire drill for " + name)
	}
	fireDrills[name] = fn
}

// FireDrill returns the live fire drill for a target, if one is registered.
func FireDrill(name string) (FireDrillFunc, bool) {
	mu.RLock()
	defer mu.RUnlock()
	d, ok := byName[name]
	if !ok {
		return nil, false
	}
	fn, ok := fireDrills[d.Name]
	return fn, ok
}

// FireDrillNames returns the sorted names of targets with a live fire drill.
func FireDrillNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	var out []string
	for n := range fireDrills {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Derive returns a campaign-local variant of d: the same protocol
// scaffolding (analysis defaults, local-state world, message layout via the
// base Target), but with the built target transformed — the mutation engine
// derives one descriptor per generated server mutant this way. The derived
// descriptor keeps its own synthetic identity: InputFingerprint hashes the
// transformed target's canonical NL sources, so two variants differ in
// fingerprint exactly when their models differ.
//
// The ground-truth oracle, concrete-impl replay and fuzz spec are
// deliberately dropped: they describe the unmutated protocol and would lie
// about a variant. ExpectTrojans is false for the same reason. Derived
// descriptors are not registered globally — pass them to a campaign via
// campaign.Options.Extra.
func (d Descriptor) Derive(name, summary string, transform func(core.Target) core.Target) Descriptor {
	base := d.Target
	return Descriptor{
		Name:    name,
		Summary: summary,
		Target: func() core.Target {
			t := base()
			t.Name = name
			if transform != nil {
				t = transform(t)
			}
			return t
		},
		Analysis:     d.Analysis,
		DefaultState: d.DefaultState,
		// The wire schema survives derivation: mutants of a byte-level target
		// still speak the same frame format, so their vectors stay lowerable.
		Wire: d.Wire,
	}
}

// stateOrDefault resolves the effective state world for a descriptor.
func (d Descriptor) stateOrDefault(st State) State {
	if st == nil {
		return d.DefaultState
	}
	return st
}

// Trojan applies the descriptor's oracle in the given state world (nil =
// DefaultState). It returns false when the target has no oracle.
func (d Descriptor) Trojan(msg []int64, st State) bool {
	if d.IsTrojan == nil {
		return false
	}
	return d.IsTrojan(msg, d.stateOrDefault(st))
}

// Replay runs the concrete-implementation replay in the given state world
// (nil = DefaultState). ok reports whether the target has an implementation.
func (d Descriptor) Replay(msg []int64, st State) (accepted, ok bool) {
	if d.ImplAccepts == nil {
		return false, false
	}
	return d.ImplAccepts(msg, d.stateOrDefault(st)), true
}

// Class renders the Trojan class key of a message.
func (d Descriptor) Class(msg []int64) string {
	if d.ClassKey == nil {
		return fmt.Sprint(msg)
	}
	return d.ClassKey(msg)
}

// FuzzCampaign runs the target's black-box fuzz baseline: tests random
// messages (tests <= 0 uses the spec default) against the concrete
// interpretation of the server model, with local state pinned to the
// canonical world and the descriptor's oracle labelling Trojans. It returns
// an error when the target has no FuzzSpec.
func (d Descriptor) FuzzCampaign(tests int, seed int64) (*fuzz.Result, error) {
	if d.Fuzz == nil {
		return nil, fmt.Errorf("registry: target %q is not fuzzable", d.Name)
	}
	if tests <= 0 {
		tests = d.Fuzz.Tests
	}
	t := d.Target()
	opts := fuzz.Options{
		Tests:          tests,
		Seed:           seed,
		Entry:          t.ServerExec.Entry,
		Inputs:         t.ServerExec.Inputs,
		GlobalConcrete: map[string]int64{},
	}
	for k, v := range t.ServerExec.GlobalConcrete {
		opts.GlobalConcrete[k] = v
	}
	// Symbolic local state cannot run concretely: pin it to the canonical
	// world (the same world the oracle assumes).
	for k, v := range d.DefaultState {
		opts.GlobalConcrete[k] = v
	}
	var oracle fuzz.Oracle
	if d.IsTrojan != nil {
		oracle = func(msg []int64) bool { return d.Trojan(msg, nil) }
	}
	return fuzz.Campaign(t.Server, d.Fuzz.Generator, oracle, d.Class, opts)
}

// Run builds the target and executes the full two-phase analysis with the
// descriptor's default options overlaid with mode and parallelism.
func (d Descriptor) Run(mode core.Mode, parallelism int) (*core.RunResult, error) {
	opts := d.Analysis
	opts.Mode = mode
	opts.Parallelism = parallelism
	return core.Run(d.Target(), opts)
}
