package protocols

// Bundle conformance: the golden corpus is consumable through audit bundles,
// not just through in-process runs. A full fleet campaign at -j 1 and -j 8
// must produce, for every registry target, a persisted class set that
// byte-matches testdata/<name>.golden after a write→read round trip — the
// same invariant TestGoldenCorpus pins for direct runs, now pinned for the
// artifact CI consumes. A seeded golden mutation therefore fails both.

import (
	"os"
	"slices"
	"strings"
	"testing"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/protocols/registry"
)

func TestCampaignBundleMatchesGolden(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		bundle, err := campaign.Run(campaign.Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("campaign (-j %d): %v", jobs, err)
		}
		// The conformance contract applies to the persisted artifact: round
		// trip through disk before comparing.
		dir := t.TempDir()
		if err := bundle.Write(dir); err != nil {
			t.Fatalf("write bundle (-j %d): %v", jobs, err)
		}
		loaded, err := campaign.Read(dir)
		if err != nil {
			t.Fatalf("read bundle (-j %d): %v", jobs, err)
		}
		for _, d := range registry.All() {
			key := campaign.Job{Target: d.Name, Mode: core.ModeOptimized}.Key()
			lines, ok := loaded.ClassLines(key)
			if !ok {
				t.Errorf("-j %d: bundle has no job %s", jobs, key)
				continue
			}
			content := strings.Join(lines, "\n")
			if len(lines) > 0 {
				content += "\n"
			}
			want, err := os.ReadFile(goldenPath(d.Name))
			if err != nil {
				t.Fatalf("missing golden for %s: %v", d.Name, err)
			}
			if string(want) != content {
				t.Errorf("-j %d: bundle class set for %s diverged from golden\n--- golden ---\n%s--- bundle ---\n%s",
					jobs, d.Name, want, content)
			}
		}
	}
}

// TestCampaignBundleDeterministic pins that two independent campaigns (at
// different -j budgets) over cheap targets produce identical diffable
// artifacts: Diff reports zero changes and the per-job class lines match.
func TestCampaignBundleDeterministic(t *testing.T) {
	opts := func(jobs int) campaign.Options {
		return campaign.Options{
			Targets: []string{"kv", "pbft", "paxos"},
			Modes:   []core.Mode{core.ModeOptimized, core.ModeAPosteriori},
			Jobs:    jobs,
		}
	}
	b1, err := campaign.Run(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	b8, err := campaign.Run(opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := campaign.Diff(b1, b8); !d.Empty() {
		t.Fatalf("-j 1 vs -j 8 campaign bundles differ:\n%s", d.Render())
	}
	for _, key := range b1.JobKeys() {
		l1, _ := b1.ClassLines(key)
		l8, _ := b8.ClassLines(key)
		if !slices.Equal(l1, l8) {
			t.Errorf("%s: class lines differ between -j 1 and -j 8", key)
		}
	}
}
