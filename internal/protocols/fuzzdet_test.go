package protocols

// Fuzz-baseline determinism: for every registry target, a campaign with a
// fixed seed must produce the identical Tests/Accepted/Trojans/Distinct
// counts on every run — the baseline numbers in EXPERIMENTS.md are
// reproducible, not one-off samples.
import (
	"testing"

	"achilles/internal/protocols/registry"
)

func TestFuzzBaselineDeterminism(t *testing.T) {
	const tests, seed = 3000, 7
	for _, d := range registry.All() {
		if d.Fuzz == nil {
			continue
		}
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			first, err := d.FuzzCampaign(tests, seed)
			if err != nil {
				t.Fatal(err)
			}
			second, err := d.FuzzCampaign(tests, seed)
			if err != nil {
				t.Fatal(err)
			}
			if first.Tests != second.Tests || first.Accepted != second.Accepted ||
				first.Trojans != second.Trojans || first.Distinct != second.Distinct {
				t.Fatalf("same seed, different results:\nfirst:  %+v\nsecond: %+v", first, second)
			}
			if first.Tests != tests {
				t.Fatalf("campaign ran %d tests, want %d", first.Tests, tests)
			}
			// Oracle sanity: a fixed target's campaign must label no accepted
			// message as Trojan.
			if !d.ExpectTrojans && first.Trojans != 0 {
				t.Fatalf("fixed target hit %d fuzz Trojans", first.Trojans)
			}
		})
	}
}
