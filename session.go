package achilles

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"achilles/internal/core"
	"achilles/internal/solver"
)

// Observer streams analysis events to the caller while a Session runs; see
// core.Observer for the callback contract (concurrent, non-blocking).
type Observer = core.Observer

// Progress is a periodic snapshot of a running analysis.
type Progress = core.Progress

// Analysis phases reported by observers and phase events.
const (
	PhaseExtract    = core.PhaseExtract
	PhasePreprocess = core.PhasePreprocess
	PhaseServer     = core.PhaseServer
)

// EventKind discriminates Session events.
type EventKind uint8

// Session event kinds.
const (
	// EventPhase marks a pipeline phase transition; Event.Phase names it.
	EventPhase EventKind = iota
	// EventTrojan carries a Trojan report the moment it is confirmed;
	// Event.Trojan is set. The report's Index is the discovery order — the
	// final result list is re-indexed in canonical fork-tree order.
	EventTrojan
	// EventProgress carries a periodic progress snapshot; Event.Progress is
	// set.
	EventProgress
)

// Event is one entry of a Session's event stream.
type Event struct {
	Kind     EventKind
	Phase    string        // EventPhase
	Trojan   *TrojanReport // EventTrojan
	Progress *Progress     // EventProgress
}

// eventBuffer is the Events channel capacity. Events are dropped (counted in
// Session.Dropped) rather than ever blocking the analysis when a consumer
// falls this far behind; Wait's result is always complete regardless. A
// variable only so tests can shrink it (see export_test.go) and force the
// overflow path deterministically.
var eventBuffer = 4096

// config collects what the functional options build up.
type config struct {
	aopts     core.AnalysisOptions
	maxStates int
	cachePath string
	observers []Observer
}

// Option configures a Session (functional options for Start).
type Option func(*config)

// WithAnalysisOptions seeds the full AnalysisOptions struct — the migration
// bridge from the v1 API and the registry's per-target defaults. It replaces
// everything set so far, so pass it first and layer the other options on
// top. (An Observer carried in the struct composes with WithObserver ones;
// FirstTrojan and ProgressInterval are kept as given unless overridden.)
func WithAnalysisOptions(opts AnalysisOptions) Option {
	return func(c *config) { c.aopts = opts }
}

// WithParallelism sets the number of analysis workers (the -j knob) across
// client extraction, preprocessing and the server exploration.
func WithParallelism(n int) Option {
	return func(c *config) { c.aopts.Parallelism = n }
}

// WithMode selects the analysis mode (ModeOptimized, ModeNoDifferentFrom,
// ModeAPosteriori).
func WithMode(m Mode) Option {
	return func(c *config) { c.aopts.Mode = m }
}

// WithMaxStates bounds the number of states either engine explores (the
// runaway backstop): it overrides the MaxStates budget of both the server
// and the client explorations. A run that hits it is marked Truncated.
func WithMaxStates(n int) Option {
	return func(c *config) { c.maxStates = n }
}

// WithSolver shares a prepared solver (and its verdict cache) with the
// session — e.g. one kept warm across many sessions of a long-lived server.
func WithSolver(s *solver.Solver) Option {
	return func(c *config) { c.aopts.Solver = s }
}

// WithSolverCache persists the solver's formula→verdict cache at path: the
// session loads it before the run (a missing, version-mismatched or corrupt
// file means a cold start, never an error) and saves it when the run ends —
// including cancelled runs, whose completed verdicts are still valid. Loaded
// verdicts are re-verified on first use (see solver.LoadCache).
func WithSolverCache(path string) Option {
	return func(c *config) { c.cachePath = path }
}

// WithObserver attaches callback-style observation to the session, in
// addition to (and independent of) the Events channel. May be given several
// times; all observers fire.
func WithObserver(obs Observer) Option {
	return func(c *config) { c.observers = append(c.observers, obs) }
}

// WithFirstTrojan stops the entire fan-out at the first confirmed Trojan
// class: a real speedup on deep targets when one witness is enough (see
// EXPERIMENTS.md, "First-trojan early exit"). The result carries at least
// one report and is marked Truncated; Wait returns a nil error.
func WithFirstTrojan() Option {
	return func(c *config) { c.aopts.FirstTrojan = true }
}

// WithProgressInterval paces progress events and OnProgress callbacks;
// zero keeps the default (200ms).
func WithProgressInterval(d time.Duration) Option {
	return func(c *config) { c.aopts.ProgressInterval = d }
}

// Session is one in-flight analysis started by Start. It is safe for
// concurrent use: any goroutine may consume Events while another Waits.
type Session struct {
	cancel  context.CancelFunc
	events  chan Event
	dropped atomic.Int64

	done     chan struct{}
	res      *RunResult
	err      error
	cacheErr error
}

// Start launches both Achilles phases on a target as a cancellable,
// streaming session and returns immediately. The analysis runs until it
// completes, ctx is cancelled (or its deadline passes), or a WithFirstTrojan
// early exit fires; consume Events for live discoveries and progress, and
// call Wait for the result.
//
//	sess, err := achilles.Start(ctx, target,
//		achilles.WithParallelism(runtime.NumCPU()),
//		achilles.WithFirstTrojan())
//	...
//	for ev := range sess.Events() {
//		if ev.Kind == achilles.EventTrojan { fmt.Println(ev.Trojan) }
//	}
//	run, err := sess.Wait()
//
// Cancellation contract: Wait returns the context error (context.Canceled /
// context.DeadlineExceeded). When the cancellation struck the server phase,
// the partial RunResult is returned alongside the error with Truncated()
// reporting true; earlier cancellations have no usable partial result and
// return a nil RunResult.
func Start(ctx context.Context, t Target, opts ...Option) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.Server == nil {
		return nil, errors.New("achilles: target has no server model")
	}
	if len(t.Clients) == 0 {
		return nil, errors.New("achilles: target has no client models")
	}
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxStates > 0 {
		t.ServerExec.MaxStates = cfg.maxStates
		t.ClientExec.MaxStates = cfg.maxStates
	}
	if cfg.aopts.Solver == nil {
		cfg.aopts.Solver = solver.Default()
	}
	sol := cfg.aopts.Solver
	if cfg.cachePath != "" {
		// Best effort: a missing cache file is the normal first run, and a
		// stale or corrupt one means a cold start (it is replaced on save).
		// No load outcome may fail Start — the cache is an accelerator, not
		// an input.
		_, _ = sol.LoadCache(cfg.cachePath)
	}

	runCtx, cancel := context.WithCancel(ctx)
	s := &Session{
		cancel: cancel,
		events: make(chan Event, eventBuffer),
		done:   make(chan struct{}),
	}

	// The session observer fans out to the event stream and every user
	// observer (WithObserver plus one carried in WithAnalysisOptions).
	userObs := append([]Observer{}, cfg.observers...)
	if o := cfg.aopts.Observer; o.OnPhase != nil || o.OnTrojan != nil || o.OnProgress != nil {
		userObs = append(userObs, o)
	}
	cfg.aopts.Observer = Observer{
		OnPhase: func(phase string) {
			s.push(Event{Kind: EventPhase, Phase: phase})
			for _, o := range userObs {
				if o.OnPhase != nil {
					o.OnPhase(phase)
				}
			}
		},
		OnTrojan: func(tr TrojanReport) {
			s.push(Event{Kind: EventTrojan, Trojan: &tr})
			for _, o := range userObs {
				if o.OnTrojan != nil {
					o.OnTrojan(tr)
				}
			}
		},
		OnProgress: func(p Progress) {
			s.push(Event{Kind: EventProgress, Progress: &p})
			for _, o := range userObs {
				if o.OnProgress != nil {
					o.OnProgress(p)
				}
			}
		},
	}

	go func() {
		defer cancel()
		res, err := core.RunCtx(runCtx, t, cfg.aopts)
		if cfg.cachePath != "" {
			// Persist even after cancellation: completed verdicts are valid
			// and make the retry warm.
			s.cacheErr = sol.SaveCache(cfg.cachePath)
		}
		s.res, s.err = res, err
		// Every observer callback fires synchronously inside RunCtx, so no
		// push can race the close.
		close(s.events)
		close(s.done)
	}()
	return s, nil
}

// push delivers an event without ever blocking the analysis: when the
// consumer has fallen eventBuffer events behind, the event is dropped and
// counted instead.
func (s *Session) push(ev Event) {
	select {
	case s.events <- ev:
	default:
		s.dropped.Add(1)
	}
}

// Events returns the session's event stream: phase transitions, Trojan
// classes as they are confirmed, and periodic progress. The channel closes
// when the session ends. Consuming it is optional — a session whose events
// are never read completes normally. The stream never blocks the analysis:
// a consumer more than eventBuffer events behind loses the overflow (see
// Dropped); the result returned by Wait is always complete.
func (s *Session) Events() <-chan Event { return s.events }

// Dropped reports how many events were discarded because the consumer fell
// behind the event buffer.
func (s *Session) Dropped() int64 { return s.dropped.Load() }

// Cancel aborts the session's analysis (idempotent). Wait then returns the
// cancellation error and — when the server phase had started — the partial,
// Truncated-marked result.
func (s *Session) Cancel() { s.cancel() }

// Wait blocks until the analysis ends and returns its outcome. On
// cancellation or deadline the error is the context error and the result is
// the partial one (nil if the cancellation struck before the server phase).
// When WithSolverCache was set and the run itself succeeded, a cache-save
// failure is reported here.
func (s *Session) Wait() (*RunResult, error) {
	<-s.done
	if s.err == nil && s.cacheErr != nil {
		return s.res, s.cacheErr
	}
	return s.res, s.err
}

// Done returns a channel closed when the session ends — select-friendly
// alongside other work; call Wait afterwards for the outcome.
func (s *Session) Done() <-chan struct{} { return s.done }
