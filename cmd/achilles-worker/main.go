// Command achilles-worker is one worker of a distributed audit campaign: it
// speaks the internal/dispatch JSONL protocol on stdin/stdout and executes
// the jobs a coordinator (achilles-audit run -workers N) assigns to it.
//
// The binary is not meant to be invoked by hand — it greets with a version
// handshake and then waits for assignments, so a terminal session just sits
// silent. Its stderr passes through to the coordinator's for human eyes.
//
// Each worker owns a private solver whose verdict cache is seeded by the
// coordinator at spawn and kept warm by fleet-wide delta broadcasts; the
// verdicts it learns ship back after every job. Because a job's class set is
// a deterministic function of its inputs, a fleet of these produces bundles
// ContentHash-identical to a single-process run.
//
// Fault-injection environment hooks (tests and the CI distributed-smoke job
// only): ACHILLES_WORKER_CRASH_JOB names a job key (target/mode) on whose
// assignment the worker dies abruptly mid-protocol; ACHILLES_WORKER_CRASH_ONCE
// points at a sentinel file claimed with O_EXCL so exactly one worker of the
// fleet crashes and the requeued job survives elsewhere.
package main

import (
	"fmt"
	"os"

	"achilles/internal/dispatch"
	_ "achilles/internal/protocols"
)

func main() {
	err := dispatch.Serve(os.Stdin, os.Stdout, dispatch.WorkerConfig{
		CrashJob:  os.Getenv("ACHILLES_WORKER_CRASH_JOB"),
		CrashOnce: os.Getenv("ACHILLES_WORKER_CRASH_ONCE"),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-worker:", err)
		os.Exit(1)
	}
}
