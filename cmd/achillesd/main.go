// Command achillesd serves Trojan-message audits over HTTP — the daemon
// face of the pipeline behind achilles-audit (see internal/serve).
//
// Usage:
//
//	achillesd [-addr HOST:PORT] [-j N] [-quota N] [-store DIR]
//	          [-cache FILE] [-drain-timeout DURATION]
//
// Clients POST audit jobs to /v1/jobs, follow them as server-sent events on
// /v1/jobs/{id}/events, and fetch the persisted bundles — byte-identical to
// achilles-audit bundles for the same inputs — from the content-addressed
// store under /v1/bundles. All concurrent jobs share one -j worker budget,
// one solver (so the verdict cache stays warm across jobs), and one bundle
// store. Per-client concurrency is capped at -quota in-flight jobs; beyond
// it, submissions are rejected with 429 + Retry-After.
//
// The daemon prints "achillesd: listening on ADDR" once the listener is up
// (with the resolved port when -addr ends in :0), answers /healthz and
// /metrics, and drains gracefully on SIGINT/SIGTERM: /healthz flips to 503,
// running sessions are cancelled mid-frontier and their interrupted bundles
// persisted, open event streams end with their terminal done event, the
// listener closes once connections go idle, and the process exits 0 when
// every job goroutine has unwound — or 3 if the drain exceeds
// -drain-timeout. A listener failure after startup runs the same drain
// before exiting 1. Usage errors (unknown flags, bad -j, an address already
// in use) exit 2.
//
// With -cache the solver's formula→verdict cache is loaded at startup and
// saved back after the drain, like achilles-audit run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	_ "achilles/internal/protocols"
	"achilles/internal/serve"
	"achilles/internal/solver"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for the re-exec exit-code tests.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("achillesd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7373", "listen address (use :0 for an ephemeral port)")
	jobs := fs.Int("j", runtime.NumCPU(), "global analysis worker budget shared by all concurrent jobs")
	quota := fs.Int("quota", 4, "max in-flight jobs per client before 429 backpressure")
	store := fs.String("store", "achillesd-store", "content-addressed bundle store directory")
	cacheFile := fs.String("cache", "", "persistent solver cache file, loaded at startup and saved after the drain")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for running jobs to unwind")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "achillesd: invalid -j %d (must be >= 1)\n", *jobs)
		fs.Usage()
		return 2
	}
	if *quota < 1 {
		fmt.Fprintf(stderr, "achillesd: invalid -quota %d (must be >= 1)\n", *quota)
		fs.Usage()
		return 2
	}
	if *drainTimeout <= 0 {
		fmt.Fprintf(stderr, "achillesd: invalid -drain-timeout %v (must be > 0)\n", *drainTimeout)
		fs.Usage()
		return 2
	}

	sol := solver.Default()
	if *cacheFile != "" {
		if loaded, err := sol.LoadCache(*cacheFile); err == nil {
			fmt.Fprintf(stdout, "solver cache: loaded %d verdict(s) from %s\n", loaded, *cacheFile)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "achillesd: ignoring solver cache: %v\n", err)
		}
	}
	srv, err := serve.New(serve.Config{
		Workers:     *jobs,
		ClientQuota: *quota,
		StoreDir:    *store,
		Solver:      sol,
	})
	if err != nil {
		fmt.Fprintln(stderr, "achillesd:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// Address in use, bad host, privileged port — all user input problems.
		fmt.Fprintln(stderr, "achillesd:", err)
		return 2
	}
	// The signal handler must be in place before the listen address is
	// announced: the announcement is what tells supervisors (and the re-exec
	// tests) the daemon is ready, and a SIGTERM that lands before Notify
	// would kill the process instead of draining it.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stdout, "achillesd: listening on %s (workers %d, quota %d, store %s)\n",
		ln.Addr(), *jobs, *quota, *store)

	exit := 0
	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "achillesd: %v — draining\n", sig)
	case err := <-serveErr:
		// A listener failure is no reason to abandon in-flight jobs: fall
		// through to the same drain-and-save epilogue the signal path runs,
		// then report the serve error.
		fmt.Fprintln(stderr, "achillesd:", err)
		exit = 1
	}
	signal.Stop(sigCh)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Cancel the jobs before shutting the HTTP server down: an open event
	// stream only ends once its job is terminal, so the reverse order would
	// leave httpSrv.Shutdown blocked on live SSE connections for the whole
	// drain window and then hand srv.Shutdown an already-expired context.
	// After Drain, streams finish with their done event, connections go
	// idle, and httpSrv.Shutdown returns; srv.Shutdown then waits for the
	// job goroutines to persist their (interrupted) bundles and unwind.
	srv.Drain()
	httpSrv.Shutdown(ctx)
	drainErr := srv.Shutdown(ctx)
	if *cacheFile != "" {
		if err := sol.SaveCache(*cacheFile); err != nil {
			fmt.Fprintln(stderr, "achillesd:", err)
		} else {
			fmt.Fprintf(stdout, "solver cache: saved to %s\n", *cacheFile)
		}
	}
	if exit != 0 {
		return exit
	}
	if drainErr != nil {
		fmt.Fprintln(stderr, "achillesd:", drainErr)
		return 3
	}
	fmt.Fprintln(stdout, "achillesd: drained cleanly")
	return 0
}
