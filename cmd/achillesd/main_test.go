package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// reexec re-runs the test binary as achillesd with the given argument
// string; the child branch in each test dispatches on ACHILLESD_ARGS.
func reexec(t *testing.T, testName, args string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", testName)
	cmd.Env = append(os.Environ(), "ACHILLESD_ARGS="+args)
	cmd.Env = append(cmd.Env, extraEnv...)
	return cmd
}

// TestUsageErrorsExit2 re-executes the test binary as achillesd with
// malformed flags and asserts the usage-error exit code 2 — distinct from 0
// (clean drain), 1 (serve failure) and 3 (incomplete drain), which is what
// lets init systems tell a misconfiguration from a crash.
func TestUsageErrorsExit2(t *testing.T) {
	if args := os.Getenv("ACHILLESD_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, " "), os.Stdout, os.Stderr))
	}
	// An occupied port for the address-in-use case.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cases := map[string]string{
		"unknown-flag":      "-no-such-flag",
		"bad-j":             "-j 0",
		"bad-quota":         "-quota 0",
		"bad-drain-timeout": "-drain-timeout -1s",
		"empty-store":       "-store=",
		"addr-in-use":       "-addr " + ln.Addr().String() + " -store " + t.TempDir(),
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			out, err := reexec(t, "TestUsageErrorsExit2", args).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\noutput:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code %d, want 2\noutput:\n%s", code, out)
			}
		})
	}
}

// TestSigtermDrainsAndExits0: a real achillesd process with a job in flight
// AND a live SSE stream attached exits 0 on SIGTERM after draining — the
// session is cancelled, the interrupted bundle persisted, the open event
// stream ends with its terminal done event, and the "drained cleanly" line
// printed. The open stream is the hard part: the drain must cancel jobs
// before the HTTP shutdown's idle-wait, or the live SSE connection burns
// the whole -drain-timeout and the process exits 3 instead. This is the
// contract the CI smoke job and any process supervisor rely on.
func TestSigtermDrainsAndExits0(t *testing.T) {
	if args := os.Getenv("ACHILLESD_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, " "), os.Stdout, os.Stderr))
	}
	store := filepath.Join(t.TempDir(), "store")
	cmd := reexec(t, "TestSigtermDrainsAndExits0", "-addr 127.0.0.1:0 -j 2 -store "+store)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon announces its resolved listen address on stdout; everything
	// after that is the drain narrative.
	sc := bufio.NewScanner(stdout)
	addr := ""
	var tail strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "achillesd: listening on "); ok {
			addr = strings.Fields(rest)[0]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never announced its listen address")
	}
	go func() {
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
	}()

	base := "http://" + addr
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", hr.Status)
	}
	// Put a real audit in flight so the drain has something to cancel.
	jr, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"targets":["kv"],"parallelism":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var js struct {
		EventsURL string `json:"events_url"`
	}
	if err := json.NewDecoder(jr.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if jr.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", jr.Status)
	}
	// Attach a live event stream and keep it open across the SIGTERM: the
	// drain must end it with a done event, not hang on it until the timeout.
	es, err := http.Get(base + js.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	if es.StatusCode != http.StatusOK {
		t.Fatalf("events: %s", es.Status)
	}
	stream := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(es.Body)
		es.Body.Close()
		stream <- string(b)
	}()

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM drain exited non-zero: %v\noutput:\n%s", err, tail.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not exit within 60s of SIGTERM\noutput:\n%s", tail.String())
	}
	if !strings.Contains(tail.String(), "drained cleanly") {
		t.Errorf("drain narrative missing 'drained cleanly':\n%s", tail.String())
	}
	select {
	case body := <-stream:
		if !strings.Contains(body, "event: done") {
			t.Errorf("live event stream ended without a done event:\n%s", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("live event stream still open after the daemon exited")
	}
	// The drained job's bundle — finished or interrupted, depending on where
	// the TERM landed — made it to the store.
	entries, err := os.ReadDir(store)
	if err != nil || len(entries) == 0 {
		t.Fatalf("store after drain: entries=%v err=%v", entries, err)
	}
}

// TestHelpMentionsFlags: -h prints the flag set (and exits 2 via
// flag.ErrHelp handling in ContinueOnError mode — also covered above, but
// this pins the usage text actually listing the knobs).
func TestHelpMentionsFlags(t *testing.T) {
	if args := os.Getenv("ACHILLESD_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, " "), os.Stdout, os.Stderr))
	}
	out, err := reexec(t, "TestHelpMentionsFlags", "-h").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("-h: want exit 2, got %v", err)
	}
	for _, flag := range []string{"-addr", "-j", "-quota", "-store", "-cache", "-drain-timeout"} {
		if !strings.Contains(string(out), flag) {
			t.Errorf("usage text missing %s:\n%s", flag, out)
		}
	}
}
