package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// reexec re-runs the test binary as trojan-inject with the given arguments
// and returns its exit code and combined output.
func reexec(t *testing.T, args string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestReexecEntry")
	cmd.Env = append(os.Environ(), "TROJAN_INJECT_ARGS="+args)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec failed to run: %v\noutput:\n%s", err, out)
	}
	return ee.ExitCode(), string(out)
}

// TestReexecEntry is the child-process entry point for the re-exec tests:
// with TROJAN_INJECT_ARGS set it behaves as the trojan-inject binary.
func TestReexecEntry(t *testing.T) {
	args := os.Getenv("TROJAN_INJECT_ARGS")
	if args == "" {
		t.Skip("re-exec entry point; driven by the exit-code tests")
	}
	os.Args = append([]string{"trojan-inject"}, strings.Split(args, " ")...)
	main()
	os.Exit(0) // fire-drill path returned without exiting: success
}

// TestUsageErrorsExit2 pins the exit-code contract CI distinguishes: usage
// errors exit 2, never 1 (the "campaign found problems" code).
func TestUsageErrorsExit2(t *testing.T) {
	cases := map[string]string{
		// kv is registered but has no live fire drill.
		"target-without-fire-drill": "-target kv",
		"unknown-target":            "-target no-such-proto",
		"mutate-unknown-target":     "-mutate -targets fsp,no-such-proto",
		"mutate-unknown-operator":   "-mutate -targets kv -ops drop-everything",
		"mutate-bad-j":              "-mutate -j 0",
		"mutate-bad-max":            "-mutate -max -1",
		"mutate-bad-mode":           "-mutate -mode nope",
		"mutate-bad-baseline":       "-mutate -baseline /no/such/bundle",
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			code, out := reexec(t, args)
			if code != 2 {
				t.Errorf("exit code %d, want 2\noutput:\n%s", code, out)
			}
		})
	}
}

// TestMutateCampaignSmoke runs a real (tiny) mutation campaign through the
// CLI: it must exit 0, report the seeded kv Trojan as found, and reuse every
// job on an incremental re-run against its own bundle.
func TestMutateCampaignSmoke(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundle")
	report := filepath.Join(t.TempDir(), "recall.json")
	code, out := reexec(t, "-mutate -targets kv -max 4 -j 2 -out "+dir+" -report "+report)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out)
	}
	for _, want := range []string{"mutation recall", "kv", "found", "recall report: " + report} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"seeded_detected": true`) {
		t.Fatalf("report does not confirm the seeded Trojan:\n%s", raw)
	}

	code, out = reexec(t, "-mutate -targets kv -max 4 -j 2 -baseline "+dir)
	if code != 0 {
		t.Fatalf("incremental run exit code %d, want 0\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "cached 5/5 job(s)") {
		t.Errorf("incremental run did not reuse every job:\n%s", out)
	}
}

// TestMutateClobberRefused: an occupied -out without -force is refused up
// front, before any analysis runs.
func TestMutateClobberRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := reexec(t, "-mutate -targets kv -max 1 -out "+dir)
	if code != 2 {
		t.Fatalf("exit code %d, want 2\noutput:\n%s", code, out)
	}
	if !strings.Contains(out, "-force") {
		t.Errorf("refusal lacks the -force hint:\n%s", out)
	}
}
