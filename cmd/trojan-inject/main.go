// Command trojan-inject attacks a registered target with the Trojans the
// analysis itself discovers. It has two modes:
//
// Fire drill (default): run the Achilles analysis, start a live concrete
// server, and inject every discovered Trojan message into it — the paper's
// fire-drill scenario (§4.1).
//
//	trojan-inject [-target fsp] [-addr 127.0.0.1:0]
//
// Mutation campaign (-mutate): generate semantically mutated variants of
// the targets' server models (weakened guards, dropped validation,
// swapped verdicts, …), audit originals and mutants as ONE incremental
// campaign, and measure the detector's recall — which injected bugs
// surface as new Trojan classes — plus its precision on the unmutated
// ground truth.
//
//	trojan-inject -mutate [-targets fsp,kv,raft] [-max N] [-ops a,b] \
//	    [-j N] [-mode optimized] [-out DIR [-force]] [-baseline DIR] \
//	    [-report FILE] [-cache FILE]
//
// The campaign exits 0 when every hand-seeded ground-truth Trojan was
// detected, 1 when one was missed (a false negative on a known bug) or the
// campaign failed, and 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/mutate"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"
)

func main() {
	mutateMode := flag.Bool("mutate", false, "run a mutation-recall campaign instead of a live fire drill")
	// Fire-drill flags.
	targetName := flag.String("target", "fsp", "registered target to fire-drill")
	addr := flag.String("addr", "127.0.0.1:0", "UDP address for the live server")
	// Mutation-campaign flags.
	targets := flag.String("targets", strings.Join(mutate.DefaultTargets, ","), "comma-separated base targets to mutate")
	max := flag.Int("max", 0, "cap generated mutants per target, sampled across operators (0 = every site)")
	ops := flag.String("ops", "", "comma-separated mutation operators (default all: "+strings.Join(mutate.OperatorNames(), ", ")+")")
	jobs := flag.Int("j", runtime.NumCPU(), "global parallelism budget across the campaign")
	mode := flag.String("mode", "optimized", "analysis mode for every job")
	out := flag.String("out", "", "write the campaign bundle to this directory")
	force := flag.Bool("force", false, "replace an existing bundle at -out")
	baseline := flag.String("baseline", "", "previous bundle dir: reuse reports for jobs whose input fingerprint is unchanged")
	report := flag.String("report", "", "write the machine-readable recall report (JSON) to this file")
	cacheFile := flag.String("cache", "", "persistent solver cache file, loaded before and saved after the run")
	flag.Parse()

	if *mutateMode {
		os.Exit(runMutate(*targets, *ops, *mode, *out, *baseline, *report, *cacheFile, *max, *jobs, *force))
	}

	if _, ok := registry.Lookup(*targetName); !ok {
		fmt.Fprintf(os.Stderr, "trojan-inject: unknown target %q (registered: %s)\n",
			*targetName, strings.Join(registry.Names(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	drill, ok := registry.FireDrill(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "trojan-inject: target %q has no live fire drill (available: %s)\n",
			*targetName, strings.Join(registry.FireDrillNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	if err := drill(*addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		os.Exit(1)
	}
}

// runMutate drives one mutation-recall campaign and returns the exit code.
func runMutate(targets, ops, modeArg, out, baselineDir, reportFile, cacheFile string, max, jobs int, force bool) int {
	if jobs < 1 {
		fmt.Fprintf(os.Stderr, "trojan-inject: invalid -j %d (must be >= 1)\n", jobs)
		return 2
	}
	if max < 0 {
		fmt.Fprintf(os.Stderr, "trojan-inject: invalid -max %d (must be >= 0)\n", max)
		return 2
	}
	mode, err := core.ParseMode(modeArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		return 2
	}
	opts := mutate.CampaignOptions{
		Targets:      splitList(targets),
		Mode:         mode,
		Jobs:         jobs,
		MaxPerTarget: max,
		Operators:    splitList(ops),
		Solver:       solver.Default(),
	}
	for _, name := range opts.Targets {
		if _, ok := registry.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "trojan-inject: unknown target %q (registered: %s)\n",
				name, strings.Join(registry.Names(), ", "))
			return 2
		}
	}
	known := mutate.OperatorNames()
	for _, op := range opts.Operators {
		found := false
		for _, k := range known {
			found = found || op == k
		}
		if !found {
			fmt.Fprintf(os.Stderr, "trojan-inject: unknown operator %q (catalog: %s)\n",
				op, strings.Join(known, ", "))
			return 2
		}
	}
	if baselineDir != "" {
		base, err := campaign.Read(baselineDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trojan-inject: -baseline:", err)
			return 2
		}
		opts.Baseline = base
		opts.BaselineDir = baselineDir
	}
	if out != "" && !force {
		// Pre-flight the clobber check before spending the campaign.
		if entries, err := os.ReadDir(out); err == nil && len(entries) > 0 {
			fmt.Fprintf(os.Stderr, "trojan-inject: %v: %s is not empty (pass -force to replace)\n",
				campaign.ErrBundleExists, out)
			return 2
		}
	}
	if cacheFile != "" {
		if loaded, err := opts.Solver.LoadCache(cacheFile); err == nil {
			fmt.Printf("solver cache: loaded %d verdict(s) from %s\n", loaded, cacheFile)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "trojan-inject: ignoring solver cache: %v\n", err)
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	res, runErr := mutate.RunCtx(ctx, opts)
	stopSignals()
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "trojan-inject:", runErr)
		return 1
	}
	if cacheFile != "" {
		if err := opts.Solver.SaveCache(cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		} else {
			fmt.Printf("solver cache: saved to %s\n", cacheFile)
		}
	}
	if out != "" {
		werr := res.Bundle.Write(out)
		if force {
			werr = res.Bundle.Overwrite(out)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "trojan-inject:", werr)
			return 1
		}
		fmt.Printf("bundle: %s\n", out)
	}
	if reportFile != "" {
		data, err := json.MarshalIndent(res.Report, "", "  ")
		if err == nil {
			err = os.WriteFile(reportFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trojan-inject:", err)
			return 1
		}
		fmt.Printf("recall report: %s\n", reportFile)
	}

	for _, name := range opts.Targets {
		if st, ok := res.GenStats[name]; ok {
			fmt.Printf("mutants %-6s %3d selected / %3d sites (%d identical, %d duplicate, %d compile-failed, %d over cap)\n",
				name, st.Kept-st.Capped, st.Sites, st.Identical, st.Duplicate, st.CompileFailed, st.Capped)
		}
	}
	if res.Report.CachedJobs > 0 {
		fmt.Printf("cached %d/%d job(s) from baseline %s\n",
			res.Report.CachedJobs, len(res.Bundle.Manifest.Runs), baselineDir)
	}
	fmt.Print(res.Report.Render())

	if errors.Is(runErr, context.Canceled) {
		fmt.Fprintln(os.Stderr, "trojan-inject: campaign interrupted; partial results above")
		return 1
	}
	if fn := res.Report.FalseNegatives(); len(fn) > 0 {
		fmt.Fprintf(os.Stderr, "trojan-inject: seeded ground-truth Trojans MISSED on: %s\n", strings.Join(fn, ", "))
		return 1
	}
	return 0
}

func splitList(arg string) []string {
	var out []string
	for _, f := range strings.Split(arg, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
