// Command trojan-inject runs the Achilles analysis on the FSP models,
// starts a live concrete FSP server on a UDP socket, and injects every
// discovered Trojan message into it — the paper's fire-drill scenario.
package main

import (
	"flag"
	"fmt"
	"os"

	"achilles/internal/inject"
	"achilles/internal/protocols/fsp"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "UDP address for the live FSP server")
	flag.Parse()

	server := fsp.NewServer()
	server.FS.Put("fil1", []byte("precious data"))
	us, err := fsp.ListenUDP(*addr, server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		os.Exit(1)
	}
	defer us.Close()
	fmt.Printf("live FSP server on %s\n", us.Addr())

	client, err := fsp.UDPClient(us.Addr())
	if err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		os.Exit(1)
	}
	outcomes, err := inject.FSPFireDrill(client.Send)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		os.Exit(1)
	}
	for _, o := range outcomes {
		status := "REJECTED"
		if o.Accepted {
			status = "ACCEPTED"
		}
		fmt.Printf("  trojan #%-3d %v -> %s (%s)\n", o.Trojan.Index, o.Trojan.Concrete, status, o.Effect)
	}
	s := inject.Summarize(outcomes)
	fmt.Printf("fire drill complete: %d/%d Trojans accepted by the live server, %d smuggled-byte events\n",
		s.Accepted, s.Total, server.SmuggledBytes)
}
