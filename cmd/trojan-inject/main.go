// Command trojan-inject runs the Achilles analysis on a registered target,
// starts a live concrete server, and injects every discovered Trojan
// message into it — the paper's fire-drill scenario (§4.1).
//
// Usage:
//
//	trojan-inject [-target fsp] [-addr 127.0.0.1:0]
//
// The target resolves from the protocol registry; an unknown target, or one
// without a live fire drill, is a usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
)

func main() {
	targetName := flag.String("target", "fsp", "registered target to fire-drill")
	addr := flag.String("addr", "127.0.0.1:0", "UDP address for the live server")
	flag.Parse()

	if _, ok := registry.Lookup(*targetName); !ok {
		fmt.Fprintf(os.Stderr, "trojan-inject: unknown target %q (registered: %s)\n",
			*targetName, strings.Join(registry.Names(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	drill, ok := registry.FireDrill(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "trojan-inject: target %q has no live fire drill (available: %s)\n",
			*targetName, strings.Join(registry.FireDrillNames(), ", "))
		flag.Usage()
		os.Exit(2)
	}
	if err := drill(*addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "trojan-inject:", err)
		os.Exit(1)
	}
}
