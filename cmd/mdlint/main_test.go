package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAnchorOf(t *testing.T) {
	cases := map[string]string{
		"Quickstart": "quickstart",
		"The NL modelling language — cheat sheet": "the-nl-modelling-language--cheat-sheet",
		"Fleet audits":                         "fleet-audits",
		"`send()` conventions (client models)": "send-conventions-client-models",
	}
	for in, want := range cases {
		if got := anchorOf(in); got != want {
			t.Errorf("anchorOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	other := filepath.Join(dir, "OTHER.md")
	if err := os.WriteFile(other, []byte("# Real Heading\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := strings.Join([]string{
		"# Title",
		"good file link: [x](OTHER.md)",
		"good anchor link: [x](OTHER.md#real-heading)",
		"good self anchor: [x](#title)",
		"external: [x](https://example.com/nope)",
		"```",
		"not a [link](missing-in-code.md)",
		"```",
		"broken: [x](MISSING.md)",
		"broken anchor: [x](OTHER.md#no-such)",
	}, "\n")
	path := filepath.Join(dir, "DOC.md")
	if err := os.WriteFile(path, []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkFile(path, map[string]map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want 2 problems, got %d: %v", len(problems), problems)
	}
	if !strings.Contains(problems[0], "MISSING.md") || !strings.Contains(problems[1], "no-such") {
		t.Errorf("unexpected problems: %v", problems)
	}
}
