// Command mdlint is the dependency-free markdown checker behind the CI docs
// job. It scans the given markdown files for inline links and validates the
// local ones: a relative link must resolve to an existing file or directory
// (relative to the linking file), and a same-file anchor must match a
// heading. External http(s)/mailto links are not fetched.
//
// Usage:
//
//	mdlint FILE.md [FILE.md ...]
//
// Exit status: 0 when every link resolves, 1 when any is broken, 2 on usage
// or I/O errors.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](dest). Images ![alt](dest)
// match too via the optional bang; code spans are stripped before matching.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings for anchor validation.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// anchorOf reproduces the GitHub heading → anchor slug: lowercase, spaces
// to dashes, letters/digits/underscores kept, other punctuation dropped.
func anchorOf(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r), unicode.IsDigit(r), r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// stripCode removes fenced code blocks and inline code spans so example
// snippets are not mistaken for links.
func stripCode(md string) string {
	var out []string
	inFence := false
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		// Drop inline code spans.
		for {
			i := strings.IndexByte(line, '`')
			if i < 0 {
				break
			}
			j := strings.IndexByte(line[i+1:], '`')
			if j < 0 {
				break
			}
			line = line[:i] + line[i+1+j+1:]
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// checkFile validates every local link in one markdown file, returning the
// broken ones as human-readable problems.
func checkFile(path string, anchors map[string]map[string]bool) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(stripCode(string(raw)), -1) {
		dest := m[1]
		switch {
		case strings.HasPrefix(dest, "http://"), strings.HasPrefix(dest, "https://"),
			strings.HasPrefix(dest, "mailto:"):
			continue
		}
		file, anchor, _ := strings.Cut(dest, "#")
		target := path
		if file != "" {
			target = filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(target); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q: %v", path, dest, err))
				continue
			}
		}
		if anchor != "" && strings.HasSuffix(target, ".md") {
			as, err := anchorsOf(target, anchors)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: link %q: %v", path, dest, err))
				continue
			}
			if !as[anchor] {
				problems = append(problems, fmt.Sprintf("%s: link %q: no heading for anchor #%s", path, dest, anchor))
			}
		}
	}
	return problems, nil
}

// anchorsOf lazily computes the anchor set of a markdown file.
func anchorsOf(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if as, ok := cache[path]; ok {
		return as, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	as := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(stripCode(string(raw)), -1) {
		as[anchorOf(m[1])] = true
	}
	cache[path] = as
	return as, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlint FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	anchors := map[string]map[string]bool{}
	broken := 0
	for _, path := range os.Args[1:] {
		problems, err := checkFile(path, anchors)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Printf("mdlint: %d file(s) clean\n", len(os.Args)-1)
}
