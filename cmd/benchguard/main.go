// Command benchguard compares fresh BENCH_<exp>.json reports (written by
// benchtab -json) against committed baselines and fails when a guarded
// metric regresses. It is the CI gate of the bench trajectory: wall-clock
// metrics are informational (host-dependent), but the guarded search-space
// counters — solver queries, decisions, splits, class counts — are
// deterministic at -j 1, so a regression there is a real change in how much
// work the analysis does, not measurement noise.
//
// Usage:
//
//	benchguard [-tolerance 0.25] -base DIR -new DIR
//
// Every BENCH_*.json in -new is compared against the same-named file in
// -base. A guarded metric regresses when it moves against its direction by
// more than the tolerance (exact metrics must match bit-for-bit). A report
// with no baseline counterpart passes with a note — that is how a new
// experiment starts its trajectory. Exit codes: 0 clean, 1 regression,
// 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"achilles/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind flag parsing; tests drive it directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tolerance := fs.Float64("tolerance", 0.25, "allowed fractional regression for guarded metrics")
	baseDir := fs.String("base", "", "directory holding baseline BENCH_*.json files")
	newDir := fs.String("new", "", "directory holding freshly generated BENCH_*.json files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseDir == "" || *newDir == "" || *tolerance < 0 {
		fmt.Fprintln(stderr, "benchguard: -base and -new are required and -tolerance must be >= 0")
		fs.Usage()
		return 2
	}
	fresh, err := filepath.Glob(filepath.Join(*newDir, "BENCH_*.json"))
	if err != nil || len(fresh) == 0 {
		fmt.Fprintf(stderr, "benchguard: no BENCH_*.json files in %s\n", *newDir)
		return 2
	}
	sort.Strings(fresh)

	failed := false
	for _, path := range fresh {
		name := filepath.Base(path)
		cur, err := readReport(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %s: %v\n", name, err)
			return 2
		}
		basePath := filepath.Join(*baseDir, name)
		base, err := readReport(basePath)
		if os.IsNotExist(err) {
			fmt.Fprintf(stdout, "benchguard: %s: no baseline yet, starting trajectory\n", name)
			continue
		}
		if err != nil {
			fmt.Fprintf(stderr, "benchguard: %s: %v\n", basePath, err)
			return 2
		}
		violations := compareReports(base, cur, *tolerance)
		if len(violations) == 0 {
			fmt.Fprintf(stdout, "benchguard: %s: ok (%d guarded metrics)\n", name, guardedCount(cur))
			continue
		}
		failed = true
		for _, v := range violations {
			fmt.Fprintf(stderr, "benchguard: %s: %s\n", name, v)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func readReport(path string) (experiments.BenchReport, error) {
	var r experiments.BenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("parsing %s: %w", path, err)
	}
	return r, nil
}

func guardedCount(r experiments.BenchReport) int {
	n := 0
	for _, m := range r.Metrics {
		if m.Guard {
			n++
		}
	}
	return n
}

// compareReports checks every guarded metric of cur against base and returns
// the violations, in metric order. Baselines from a different solver
// revision are not comparable: the guarded counters measure that revision's
// decision procedure, so a version change is itself reported (regenerate the
// baseline in the same change that bumps the version).
func compareReports(base, cur experiments.BenchReport, tolerance float64) []string {
	if base.SolverVersion != cur.SolverVersion {
		return []string{fmt.Sprintf(
			"solver version changed (%s -> %s): regenerate the committed baseline in this change",
			base.SolverVersion, cur.SolverVersion)}
	}
	var out []string
	for _, m := range cur.Metrics {
		if !m.Guard {
			continue
		}
		bm, ok := base.Metric(m.Name)
		if !ok {
			// New guarded metric: nothing to regress against yet.
			continue
		}
		if m.Exact {
			if m.Value != bm.Value {
				out = append(out, fmt.Sprintf(
					"%s changed: %g -> %g (exact metric must match the baseline)",
					m.Name, bm.Value, m.Value))
			}
			continue
		}
		if regressed(bm.Value, m.Value, m.HigherIsBetter, tolerance) {
			dir := "rose"
			if m.HigherIsBetter {
				dir = "fell"
			}
			out = append(out, fmt.Sprintf(
				"%s %s beyond tolerance: %g -> %g (allowed %.0f%%)",
				m.Name, dir, bm.Value, m.Value, tolerance*100))
		}
	}
	return out
}

// regressed reports whether value moved against its direction by more than
// the tolerance fraction of the baseline.
func regressed(base, value float64, higherIsBetter bool, tolerance float64) bool {
	if higherIsBetter {
		return value < base*(1-tolerance)
	}
	if base == 0 {
		return value > 0
	}
	return value > base*(1+tolerance)
}
