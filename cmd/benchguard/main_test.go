package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"achilles/internal/experiments"
)

func report(version string, metrics ...experiments.Metric) experiments.BenchReport {
	return experiments.BenchReport{Experiment: "test", SolverVersion: version, Metrics: metrics}
}

func guarded(name string, value float64) experiments.Metric {
	return experiments.Metric{Name: name, Value: value, Unit: "u", Guard: true}
}

func exact(name string, value float64) experiments.Metric {
	return experiments.Metric{Name: name, Value: value, Unit: "u", Guard: true, Exact: true}
}

func info(name string, value float64) experiments.Metric {
	return experiments.Metric{Name: name, Value: value, Unit: "ms"}
}

func TestCompareReports(t *testing.T) {
	const v = "solver/2"
	cases := []struct {
		name       string
		base, cur  experiments.BenchReport
		tolerance  float64
		violations int
		contains   string
	}{
		{
			name: "clean",
			base: report(v, guarded("decisions", 1000), exact("classes", 80), info("wall_ms", 500)),
			cur:  report(v, guarded("decisions", 1100), exact("classes", 80), info("wall_ms", 9999)),
		},
		{
			name:       "counter regression beyond 25%",
			base:       report(v, guarded("decisions", 1000)),
			cur:        report(v, guarded("decisions", 1300)),
			violations: 1,
			contains:   "decisions rose",
		},
		{
			name: "counter improvement is fine",
			base: report(v, guarded("decisions", 1000)),
			cur:  report(v, guarded("decisions", 10)),
		},
		{
			name:       "exact metric must match even within tolerance",
			base:       report(v, exact("classes", 80)),
			cur:        report(v, exact("classes", 81)),
			violations: 1,
			contains:   "classes changed",
		},
		{
			name:       "exact metric catches drops too",
			base:       report(v, exact("classes", 80)),
			cur:        report(v, exact("classes", 60)),
			violations: 1,
		},
		{
			name: "higher-is-better direction",
			base: report(v, experiments.Metric{Name: "recall", Value: 0.9, Guard: true, HigherIsBetter: true}),
			cur:  report(v, experiments.Metric{Name: "recall", Value: 0.5, Guard: true, HigherIsBetter: true}),

			violations: 1,
			contains:   "recall fell",
		},
		{
			name: "higher-is-better within tolerance",
			base: report(v, experiments.Metric{Name: "recall", Value: 0.9, Guard: true, HigherIsBetter: true}),
			cur:  report(v, experiments.Metric{Name: "recall", Value: 0.8, Guard: true, HigherIsBetter: true}),
		},
		{
			name:       "zero baseline grows",
			base:       report(v, guarded("unknowns", 0)),
			cur:        report(v, guarded("unknowns", 3)),
			violations: 1,
		},
		{
			name: "unguarded wall-clock ignored",
			base: report(v, info("wall_ms", 100)),
			cur:  report(v, info("wall_ms", 100000)),
		},
		{
			name: "new guarded metric starts its trajectory",
			base: report(v, guarded("decisions", 1000)),
			cur:  report(v, guarded("decisions", 1000), guarded("splits", 50)),
		},
		{
			name:       "solver version change blocks comparison",
			base:       report("solver/1", guarded("decisions", 1000)),
			cur:        report("solver/2", guarded("decisions", 1000)),
			violations: 1,
			contains:   "solver version changed",
		},
		{
			name:      "custom tolerance",
			base:      report(v, guarded("decisions", 1000)),
			cur:       report(v, guarded("decisions", 1400)),
			tolerance: 0.5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tol := tc.tolerance
			if tol == 0 {
				tol = 0.25
			}
			got := compareReports(tc.base, tc.cur, tol)
			if len(got) != tc.violations {
				t.Fatalf("got %d violations %v, want %d", len(got), got, tc.violations)
			}
			if tc.contains != "" && !strings.Contains(strings.Join(got, "\n"), tc.contains) {
				t.Errorf("violations %v do not mention %q", got, tc.contains)
			}
		})
	}
}

func writeReport(t *testing.T, dir, name string, r experiments.BenchReport) {
	t.Helper()
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunExitCodes drives the full program over real files: clean compare,
// regression, missing baseline (trajectory start) and usage errors.
func TestRunExitCodes(t *testing.T) {
	const v = "solver/2"
	base, fresh := t.TempDir(), t.TempDir()
	writeReport(t, base, "BENCH_speedup.json", report(v, guarded("decisions", 1000), exact("classes", 80)))
	writeReport(t, fresh, "BENCH_speedup.json", report(v, guarded("decisions", 900), exact("classes", 80)))

	var out, errb bytes.Buffer
	if code := run([]string{"-base", base, "-new", fresh}, &out, &errb); code != 0 {
		t.Fatalf("clean compare: exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "ok (2 guarded metrics)") {
		t.Errorf("clean compare output unexpected:\n%s", out.String())
	}

	// Regression: decisions blow past 25%.
	writeReport(t, fresh, "BENCH_speedup.json", report(v, guarded("decisions", 2000), exact("classes", 80)))
	out.Reset()
	errb.Reset()
	if code := run([]string{"-base", base, "-new", fresh}, &out, &errb); code != 1 {
		t.Fatalf("regression: exit %d, want 1; stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "decisions rose") {
		t.Errorf("regression message missing:\n%s", errb.String())
	}

	// A fresh experiment with no baseline passes and says so.
	writeReport(t, fresh, "BENCH_speedup.json", report(v, guarded("decisions", 1000), exact("classes", 80)))
	writeReport(t, fresh, "BENCH_newexp.json", report(v, guarded("decisions", 5)))
	out.Reset()
	errb.Reset()
	if code := run([]string{"-base", base, "-new", fresh}, &out, &errb); code != 0 {
		t.Fatalf("trajectory start: exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "no baseline yet") {
		t.Errorf("trajectory-start note missing:\n%s", out.String())
	}

	// Usage errors.
	for _, args := range [][]string{
		{},
		{"-base", base},
		{"-new", fresh},
		{"-base", base, "-new", t.TempDir()}, // no BENCH files
		{"-base", base, "-new", fresh, "-tolerance", "-1"},
	} {
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}

	// Corrupt JSON is a hard error, not a silent pass.
	if err := os.WriteFile(filepath.Join(fresh, "BENCH_newexp.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-base", base, "-new", fresh}, &out, &errb); code != 2 {
		t.Errorf("corrupt report: exit %d, want 2", code)
	}
}
