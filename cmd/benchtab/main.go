// Command benchtab regenerates the paper's evaluation tables and figures
// (§6) as text rows.
//
// Usage:
//
//	benchtab -exp table1|fig10|fig11|fuzz|phases|ablation|pbft|macattack|wildcard|all
package main

import (
	"flag"
	"fmt"
	"os"

	"achilles/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate")
	fuzzTests := flag.Int("fuzz-tests", 20000, "fuzzing campaign size")
	flag.Parse()

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) {
		t, err := experiments.RunTable1(16)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	run("fig10", func() (string, error) {
		f, err := experiments.RunFigure10()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig11", func() (string, error) {
		f, err := experiments.RunFigure11()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fuzz", func() (string, error) {
		f, err := experiments.RunFuzzComparison(*fuzzTests)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("phases", func() (string, error) {
		p, err := experiments.RunPhaseSplit()
		if err != nil {
			return "", err
		}
		return p.Render(), nil
	})
	run("ablation", func() (string, error) {
		a, err := experiments.RunAblation()
		if err != nil {
			return "", err
		}
		return a.Render(), nil
	})
	run("pbft", func() (string, error) {
		p, err := experiments.RunPBFTAnalysis()
		if err != nil {
			return "", err
		}
		return p.Render(), nil
	})
	run("macattack", func() (string, error) {
		return experiments.RunMACImpact(5000).Render(), nil
	})
	run("wildcard", func() (string, error) {
		w, err := experiments.RunWildcard()
		if err != nil {
			return "", err
		}
		return w.Render(), nil
	})
}
