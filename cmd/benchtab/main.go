// Command benchtab regenerates the paper's evaluation tables and figures
// (§6) as text rows, plus the reproduction-only parallel scaling table and
// the registry-wide sweep/fuzz-baseline tables.
//
// Usage:
//
//	benchtab -exp table1|fig10|fig11|fuzz|fuzzbase|phases|ablation|pbft|macattack|wildcard|speedup|sweep|campaign|incremental|firsttrojan|recall|all [-j N] [-target NAME] [-mutants N] [-json] [-out DIR]
//
// -j bounds the worker counts tried by the speedup and campaign experiments
// (powers of two up to N; default: all CPUs) and drives the sweep, the
// incremental cold-vs-warm study and the mutation-recall campaign. -target
// restricts the fuzzbase experiment to one registry target (default: every
// fuzzable one). -mutants caps generated mutants per target for the recall
// experiment (0 = every mutation site). An invalid -j or unknown experiment
// is a usage error (exit 2).
//
// -json additionally writes machine-readable results as BENCH_<exp>.json
// (into -out, default the current directory) for the experiments that
// support it (speedup, campaign); cmd/benchguard compares such files
// against the committed baselines. The text table still prints.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"achilles/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate")
	fuzzTests := flag.Int("fuzz-tests", 20000, "fuzzing campaign size")
	jobs := flag.Int("j", runtime.NumCPU(), "max parallelism for the speedup experiment")
	target := flag.String("target", "all", "registry target for the fuzzbase experiment")
	mutants := flag.Int("mutants", 0, "mutant cap per target for the recall experiment (0 = every site)")
	jsonOut := flag.Bool("json", false, "also write BENCH_<exp>.json files for reporting experiments")
	outDir := flag.String("out", ".", "directory for -json output files")
	flag.Parse()

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "benchtab: invalid -j %d (must be >= 1)\n", *jobs)
		flag.Usage()
		os.Exit(2)
	}
	if *mutants < 0 {
		fmt.Fprintf(os.Stderr, "benchtab: invalid -mutants %d (must be >= 0)\n", *mutants)
		flag.Usage()
		os.Exit(2)
	}
	if *fuzzTests < 1 {
		fmt.Fprintf(os.Stderr, "benchtab: invalid -fuzz-tests %d (must be >= 1)\n", *fuzzTests)
		flag.Usage()
		os.Exit(2)
	}

	// writeReport persists one experiment's machine-readable result when
	// -json is set.
	writeReport := func(name string, rep experiments.BenchReport, err error) error {
		if !*jsonOut {
			return nil
		}
		if err != nil {
			return err
		}
		data, err := rep.Marshal()
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, "BENCH_"+name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote %s\n", path)
		return nil
	}

	matched := false
	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		matched = true
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
	defer func() {
		if !matched {
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
			flag.Usage()
			os.Exit(2)
		}
	}()

	run("table1", func() (string, error) {
		t, err := experiments.RunTable1(16)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	})
	run("fig10", func() (string, error) {
		f, err := experiments.RunFigure10()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fig11", func() (string, error) {
		f, err := experiments.RunFigure11()
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("fuzz", func() (string, error) {
		f, err := experiments.RunFuzzComparison(*fuzzTests)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("phases", func() (string, error) {
		p, err := experiments.RunPhaseSplit()
		if err != nil {
			return "", err
		}
		return p.Render(), nil
	})
	run("ablation", func() (string, error) {
		a, err := experiments.RunAblation()
		if err != nil {
			return "", err
		}
		return a.Render(), nil
	})
	run("pbft", func() (string, error) {
		p, err := experiments.RunPBFTAnalysis()
		if err != nil {
			return "", err
		}
		return p.Render(), nil
	})
	run("macattack", func() (string, error) {
		return experiments.RunMACImpact(5000).Render(), nil
	})
	run("wildcard", func() (string, error) {
		w, err := experiments.RunWildcard()
		if err != nil {
			return "", err
		}
		return w.Render(), nil
	})
	run("speedup", func() (string, error) {
		levels := []int{1}
		for j := 2; j <= *jobs; j *= 2 {
			levels = append(levels, j)
		}
		s, err := experiments.RunSpeedup(levels)
		if err != nil {
			return "", err
		}
		rep, err := s.Report()
		if err := writeReport("speedup", rep, err); err != nil {
			return "", err
		}
		return s.Render(), nil
	})
	run("fuzzbase", func() (string, error) {
		f, err := experiments.RunFuzzBaselines(*target, *fuzzTests)
		if err != nil {
			return "", err
		}
		return f.Render(), nil
	})
	run("sweep", func() (string, error) {
		s, err := experiments.RunRegistrySweep(*jobs)
		if err != nil {
			return "", err
		}
		return s.Render(), nil
	})
	run("campaign", func() (string, error) {
		levels := []int{1}
		for j := 2; j <= *jobs; j *= 2 {
			levels = append(levels, j)
		}
		c, err := experiments.RunCampaignScaling(levels)
		if err != nil {
			return "", err
		}
		rep, err := c.Report()
		if err := writeReport("campaign", rep, err); err != nil {
			return "", err
		}
		return c.Render(), nil
	})
	run("incremental", func() (string, error) {
		ic, err := experiments.RunIncrementalCampaign(nil, *jobs)
		if err != nil {
			return "", err
		}
		return ic.Render(), nil
	})
	run("firsttrojan", func() (string, error) {
		ft, err := experiments.RunFirstTrojan(*jobs)
		if err != nil {
			return "", err
		}
		return ft.Render(), nil
	})
	run("recall", func() (string, error) {
		r, err := experiments.RunRecall(*jobs, *mutants)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}
