// Command achilles runs the Trojan-message analysis on one of the bundled
// targets and prints the discovered Trojan classes.
//
// Usage:
//
//	achilles -target fsp [-j N] [-mode optimized|no-differentfrom|a-posteriori] [-json]
//
// Targets: kv, kv-fixed, fsp, fsp-glob, pbft, pbft-fixed, paxos-concrete,
// paxos-symbolic.
//
// -j selects the number of analysis workers (default: all CPUs) across
// client extraction, predicate preprocessing and the server exploration. The
// reported Trojan class set is identical for every -j.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"achilles/internal/core"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/kv"
	"achilles/internal/protocols/paxos"
	"achilles/internal/protocols/pbft"
)

func targetByName(name string) (core.Target, error) {
	switch name {
	case "kv":
		return kv.NewTarget(), nil
	case "kv-fixed":
		return kv.NewFixedTarget(), nil
	case "fsp":
		return fsp.NewTarget(false), nil
	case "fsp-glob":
		return fsp.NewTarget(true), nil
	case "pbft":
		return pbft.NewTarget(), nil
	case "pbft-fixed":
		return pbft.NewFixedTarget(), nil
	case "paxos-concrete":
		return paxos.ConcreteStateTarget(3, 7), nil
	case "paxos-symbolic":
		return paxos.SymbolicStateTarget(), nil
	}
	return core.Target{}, fmt.Errorf("unknown target %q", name)
}

func modeByName(name string) (core.Mode, error) {
	switch name {
	case "optimized", "":
		return core.ModeOptimized, nil
	case "no-differentfrom":
		return core.ModeNoDifferentFrom, nil
	case "a-posteriori":
		return core.ModeAPosteriori, nil
	}
	return 0, fmt.Errorf("unknown mode %q", name)
}

func main() {
	targetName := flag.String("target", "kv", "target system to analyse")
	modeName := flag.String("mode", "optimized", "analysis mode")
	jobs := flag.Int("j", runtime.NumCPU(), "number of parallel analysis workers")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	tgt, err := targetByName(*targetName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(2)
	}
	mode, err := modeByName(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(2)
	}
	if *jobs < 1 {
		*jobs = 1
	}
	run, err := core.Run(tgt, core.AnalysisOptions{Mode: mode, Parallelism: *jobs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(1)
	}

	if *asJSON {
		type jsonTrojan struct {
			Index    int      `json:"index"`
			Concrete []int64  `json:"concrete"`
			Witness  string   `json:"witness"`
			Fields   []string `json:"fields,omitempty"`
			Verified bool     `json:"verified"`
		}
		var out struct {
			Target      string       `json:"target"`
			Mode        string       `json:"mode"`
			Parallelism int          `json:"parallelism"`
			ClientPaths int          `json:"client_paths"`
			Trojans     []jsonTrojan `json:"trojans"`
			TotalMS     int64        `json:"total_ms"`
		}
		out.Target = tgt.Name
		out.Mode = mode.String()
		out.Parallelism = *jobs
		out.ClientPaths = len(run.Clients.Paths)
		out.TotalMS = run.Total().Milliseconds()
		for _, tr := range run.Analysis.Trojans {
			out.Trojans = append(out.Trojans, jsonTrojan{
				Index:    tr.Index,
				Concrete: tr.Concrete,
				Witness:  tr.Witness.String(),
				Fields:   tgt.FieldNames,
				Verified: tr.VerifiedAccept && tr.VerifiedNotClient,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "achilles:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("target %s (mode %s, -j %d): %d client path predicates\n",
		tgt.Name, mode, *jobs, len(run.Clients.Paths))
	fmt.Printf("phases: extract %v, preprocess %v, server %v\n",
		run.ClientExtractTime.Round(time.Millisecond),
		run.PreprocessTime.Round(time.Millisecond),
		run.ServerTime.Round(time.Millisecond))
	if len(run.Analysis.Trojans) == 0 {
		fmt.Println("no Trojan messages found")
		return
	}
	fmt.Printf("%d Trojan message class(es):\n", len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  #%d example=%v", tr.Index, tr.Concrete)
		if len(tgt.FieldNames) > 0 {
			fmt.Printf(" fields=%v", tgt.FieldNames)
		}
		fmt.Printf(" verified=%v\n", tr.VerifiedAccept && tr.VerifiedNotClient)
	}
}
