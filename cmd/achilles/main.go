// Command achilles runs the Trojan-message analysis on one of the
// registered targets and prints the discovered Trojan classes.
//
// Usage:
//
//	achilles -target fsp [-j N] [-mode optimized|no-differentfrom|a-posteriori] [-json]
//	achilles -list
//
// Targets resolve from the protocol registry (internal/protocols/registry);
// -list prints every registered name with its one-line summary. -j selects
// the number of analysis workers (default: all CPUs) across client
// extraction, predicate preprocessing and the server exploration. The
// reported Trojan class set is identical for every -j. An unknown target,
// an unknown -mode or a -j below 1 is a usage error (exit 2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"achilles/internal/core"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
)

func listTargets(w *os.File) {
	fmt.Fprintln(w, "registered targets:")
	for _, d := range registry.All() {
		name := d.Name
		if len(d.Aliases) > 0 {
			name += " (" + strings.Join(d.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-24s %s\n", name, d.Summary)
	}
}

func main() {
	targetName := flag.String("target", "kv", "target system to analyse (see -list)")
	modeName := flag.String("mode", "optimized", "analysis mode")
	jobs := flag.Int("j", runtime.NumCPU(), "number of parallel analysis workers")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	list := flag.Bool("list", false, "list the registered targets and exit")
	flag.Parse()

	if *list {
		listTargets(os.Stdout)
		return
	}
	desc, ok := registry.Lookup(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "achilles: unknown target %q\n", *targetName)
		listTargets(os.Stderr)
		os.Exit(2)
	}
	mode, err := core.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "achilles: invalid -j %d (must be >= 1)\n", *jobs)
		flag.Usage()
		os.Exit(2)
	}
	tgt := desc.Target()
	opts := desc.Analysis
	opts.Mode = mode
	opts.Parallelism = *jobs
	run, err := core.Run(tgt, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(1)
	}

	if *asJSON {
		type jsonTrojan struct {
			Index    int      `json:"index"`
			Concrete []int64  `json:"concrete"`
			Witness  string   `json:"witness"`
			Fields   []string `json:"fields,omitempty"`
			Verified bool     `json:"verified"`
		}
		var out struct {
			Target      string       `json:"target"`
			Mode        string       `json:"mode"`
			Parallelism int          `json:"parallelism"`
			ClientPaths int          `json:"client_paths"`
			Trojans     []jsonTrojan `json:"trojans"`
			TotalMS     int64        `json:"total_ms"`
		}
		out.Target = tgt.Name
		out.Mode = mode.String()
		out.Parallelism = *jobs
		out.ClientPaths = len(run.Clients.Paths)
		out.TotalMS = run.Total().Milliseconds()
		for _, tr := range run.Analysis.Trojans {
			out.Trojans = append(out.Trojans, jsonTrojan{
				Index:    tr.Index,
				Concrete: tr.Concrete,
				Witness:  tr.Witness.String(),
				Fields:   tgt.FieldNames,
				Verified: tr.VerifiedAccept && tr.VerifiedNotClient,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "achilles:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("target %s (mode %s, -j %d): %d client path predicates\n",
		tgt.Name, mode, *jobs, len(run.Clients.Paths))
	fmt.Printf("phases: extract %v, preprocess %v, server %v\n",
		run.ClientExtractTime.Round(time.Millisecond),
		run.PreprocessTime.Round(time.Millisecond),
		run.ServerTime.Round(time.Millisecond))
	if len(run.Analysis.Trojans) == 0 {
		fmt.Println("no Trojan messages found")
		return
	}
	fmt.Printf("%d Trojan message class(es):\n", len(run.Analysis.Trojans))
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  #%d example=%v", tr.Index, tr.Concrete)
		if len(tgt.FieldNames) > 0 {
			fmt.Printf(" fields=%v", tgt.FieldNames)
		}
		fmt.Printf(" verified=%v\n", tr.VerifiedAccept && tr.VerifiedNotClient)
	}
}
