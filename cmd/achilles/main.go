// Command achilles runs the Trojan-message analysis on one of the
// registered targets and prints the discovered Trojan classes — streaming
// them as the exploration finds them.
//
// Usage:
//
//	achilles -target fsp [-j N] [-mode optimized|no-differentfrom|a-posteriori]
//	         [-timeout DURATION] [-first] [-quiet] [-json]
//	achilles -list
//
// Targets resolve from the protocol registry (internal/protocols/registry);
// -list prints every registered name with its one-line summary. -j selects
// the number of analysis workers (default: all CPUs) across client
// extraction, predicate preprocessing and the server exploration. The
// reported Trojan class set is identical for every -j.
//
// The analysis runs as a cancellable session (achilles.Start): trojans and
// periodic progress print live on stderr as the frontier advances (-quiet
// suppresses them). -timeout maps to a context deadline and Ctrl-C cancels;
// either way the partial results found so far are printed, marked
// truncated, and the process exits with code 3 — distinct from 1 (analysis
// error) and 2 (usage error: unknown target/mode, a -j below 1, or an
// unparsable -timeout). -first stops the whole exploration at the first
// confirmed Trojan class (exit 0; the result is marked truncated).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"achilles"
	"achilles/internal/core"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
)

func listTargets(w *os.File) {
	// The mode column distinguishes what each target can evidence: every
	// target has NL models ("nl"); byte-level targets add "wire" (vectors
	// lower to real frame bytes), and "oracle"/"impl"/"fuzz" mark a
	// ground-truth oracle, concrete-implementation replay and a black-box
	// fuzz baseline.
	fmt.Fprintln(w, "registered targets:")
	for _, d := range registry.All() {
		name := d.Name
		if len(d.Aliases) > 0 {
			name += " (" + strings.Join(d.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-24s %-25s %s\n", name, d.ModeSet(), d.Summary)
	}
}

func main() {
	targetName := flag.String("target", "kv", "target system to analyse (see -list)")
	modeName := flag.String("mode", "optimized", "analysis mode")
	jobs := flag.Int("j", runtime.NumCPU(), "number of parallel analysis workers")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this long (0 = no deadline); partial results exit 3")
	first := flag.Bool("first", false, "stop at the first confirmed Trojan class")
	quiet := flag.Bool("quiet", false, "suppress live progress and discovery lines on stderr")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	list := flag.Bool("list", false, "list the registered targets and exit")
	flag.Parse()

	if *list {
		listTargets(os.Stdout)
		return
	}
	desc, ok := registry.Lookup(*targetName)
	if !ok {
		fmt.Fprintf(os.Stderr, "achilles: unknown target %q\n", *targetName)
		listTargets(os.Stderr)
		os.Exit(2)
	}
	mode, err := core.ParseMode(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "achilles: invalid -j %d (must be >= 1)\n", *jobs)
		flag.Usage()
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "achilles: invalid -timeout %v (must be >= 0)\n", *timeout)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	tgt := desc.Target()
	opts := []achilles.Option{
		achilles.WithAnalysisOptions(desc.Analysis),
		achilles.WithMode(mode),
		achilles.WithParallelism(*jobs),
	}
	if *first {
		opts = append(opts, achilles.WithFirstTrojan())
	}
	sess, err := achilles.Start(ctx, tgt, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(1)
	}

	// Live view: phases, discoveries and periodic progress on stderr so
	// stdout stays parseable (-json) and diff-stable.
	for ev := range sess.Events() {
		if *quiet {
			continue
		}
		switch ev.Kind {
		case achilles.EventPhase:
			fmt.Fprintf(os.Stderr, "phase: %s\n", ev.Phase)
		case achilles.EventTrojan:
			fmt.Fprintf(os.Stderr, "trojan found after %v: example %v\n",
				ev.Trojan.Elapsed.Round(time.Millisecond), ev.Trojan.Concrete)
		case achilles.EventProgress:
			p := ev.Progress
			fmt.Fprintf(os.Stderr, "progress: %v states=%d depth=%d trojans=%d cache=%.0f%%\n",
				p.Elapsed.Round(time.Millisecond), p.StatesExplored, p.FrontierDepth,
				p.Trojans, 100*p.CacheHitRate)
		}
	}
	run, err := sess.Wait()
	// The analysis is over: put SIGINT back to its default so a second
	// Ctrl-C can kill the process while the summary prints.
	stop()
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(1)
	}
	if run == nil {
		// Cancelled before the server phase produced anything.
		fmt.Fprintln(os.Stderr, "achilles: interrupted before any results:", err)
		os.Exit(3)
	}

	if *asJSON {
		printJSON(run, tgt, mode, *jobs)
	} else {
		printText(run, tgt, mode, *jobs)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "achilles: interrupted — partial results above are marked truncated")
		os.Exit(3)
	}
}

func printJSON(run *achilles.RunResult, tgt achilles.Target, mode achilles.Mode, jobs int) {
	type jsonTrojan struct {
		Index    int      `json:"index"`
		Concrete []int64  `json:"concrete"`
		Witness  string   `json:"witness"`
		Fields   []string `json:"fields,omitempty"`
		Verified bool     `json:"verified"`
	}
	var out struct {
		Target      string       `json:"target"`
		Mode        string       `json:"mode"`
		Parallelism int          `json:"parallelism"`
		ClientPaths int          `json:"client_paths"`
		Truncated   bool         `json:"truncated,omitempty"`
		Trojans     []jsonTrojan `json:"trojans"`
		TotalMS     int64        `json:"total_ms"`
	}
	out.Target = tgt.Name
	out.Mode = mode.String()
	out.Parallelism = jobs
	out.ClientPaths = len(run.Clients.Paths)
	out.Truncated = run.Truncated()
	out.TotalMS = run.Total().Milliseconds()
	for _, tr := range run.Analysis.Trojans {
		out.Trojans = append(out.Trojans, jsonTrojan{
			Index:    tr.Index,
			Concrete: tr.Concrete,
			Witness:  tr.Witness.String(),
			Fields:   tgt.FieldNames,
			Verified: tr.VerifiedAccept && tr.VerifiedNotClient,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "achilles:", err)
		os.Exit(1)
	}
}

func printText(run *achilles.RunResult, tgt achilles.Target, mode achilles.Mode, jobs int) {
	fmt.Printf("target %s (mode %s, -j %d): %d client path predicates\n",
		tgt.Name, mode, jobs, len(run.Clients.Paths))
	fmt.Printf("phases: extract %v, preprocess %v, server %v\n",
		run.ClientExtractTime.Round(time.Millisecond),
		run.PreprocessTime.Round(time.Millisecond),
		run.ServerTime.Round(time.Millisecond))
	note := ""
	if run.Truncated() {
		note = " (truncated — partial class set)"
	}
	if len(run.Analysis.Trojans) == 0 {
		fmt.Printf("no Trojan messages found%s\n", note)
		return
	}
	fmt.Printf("%d Trojan message class(es)%s:\n", len(run.Analysis.Trojans), note)
	for _, tr := range run.Analysis.Trojans {
		fmt.Printf("  #%d example=%v", tr.Index, tr.Concrete)
		if len(tgt.FieldNames) > 0 {
			fmt.Printf(" fields=%v", tgt.FieldNames)
		}
		fmt.Printf(" verified=%v\n", tr.VerifiedAccept && tr.VerifiedNotClient)
	}
}
