// Command achilles-audit runs fleet-wide Trojan audits and manages the
// resulting bundles — the operational face of the campaign engine
// (internal/campaign).
//
// Usage:
//
//	achilles-audit run  [-out DIR] [-targets a,b|all] [-modes m1,m2|all] [-j N] [-golden DIR]
//	achilles-audit diff OLD_BUNDLE NEW_BUNDLE
//	achilles-audit ls   [ROOT]
//
// "run" audits every selected registry target in every selected mode under
// one global -j budget and writes a versioned audit bundle (manifest.json +
// one JSONL Trojan report stream per job). With -golden it additionally
// cross-checks each optimized-mode job's class lines against the golden
// corpus (<golden>/<target>.golden) and exits 1 on divergence — the CI
// regression gate.
//
// "diff" compares two bundles class-by-class and exits 0 when identical,
// 1 when Trojan classes appeared, disappeared or changed, 2 on usage or
// I/O errors.
//
// "ls" lists the bundles under a root directory (default "audits") with
// their creation time, job count and class totals.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
)

const defaultRoot = "audits"

func usage(w *os.File) {
	fmt.Fprintln(w, "usage:")
	fmt.Fprintln(w, "  achilles-audit run  [-out DIR] [-targets a,b|all] [-modes m1,m2|all] [-j N] [-golden DIR]")
	fmt.Fprintln(w, "  achilles-audit diff OLD_BUNDLE NEW_BUNDLE")
	fmt.Fprintln(w, "  achilles-audit ls   [ROOT]")
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "ls":
		cmdLs(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "achilles-audit: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

// parseModes expands a comma-separated -modes value; "all" selects every
// analysis mode.
func parseModes(arg string) ([]core.Mode, error) {
	if arg == "all" {
		return []core.Mode{core.ModeOptimized, core.ModeNoDifferentFrom, core.ModeAPosteriori}, nil
	}
	var out []core.Mode
	for _, name := range strings.Split(arg, ",") {
		m, err := core.ParseMode(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// parseTargets expands a comma-separated -targets value; "all" or the empty
// string selects every registered target.
func parseTargets(arg string) []string {
	if arg == "" || arg == "all" {
		return nil
	}
	var out []string
	for _, n := range strings.Split(arg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("achilles-audit run", flag.ExitOnError)
	out := fs.String("out", "", "bundle directory (default "+defaultRoot+"/run-<timestamp>)")
	targets := fs.String("targets", "all", "comma-separated registry targets, or all")
	modes := fs.String("modes", "optimized", "comma-separated analysis modes, or all")
	jobs := fs.Int("j", runtime.NumCPU(), "global parallelism budget across the campaign")
	golden := fs.String("golden", "", "golden corpus dir to cross-check optimized-mode class sets against")
	fs.Parse(args)

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "achilles-audit: invalid -j %d (must be >= 1)\n", *jobs)
		fs.Usage()
		os.Exit(2)
	}
	modeList, err := parseModes(*modes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		fs.Usage()
		os.Exit(2)
	}
	opts := campaign.Options{
		Targets: parseTargets(*targets),
		Modes:   modeList,
		Jobs:    *jobs,
	}
	if _, err := campaign.Plan(opts); err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		fmt.Fprintf(os.Stderr, "registered targets: %s\n", strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}
	dir := *out
	if dir == "" {
		dir = filepath.Join(defaultRoot, "run-"+time.Now().UTC().Format("20060102-150405"))
	}

	bundle, err := campaign.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(1)
	}
	if err := bundle.Write(dir); err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(1)
	}

	failed := 0
	total := 0
	for _, rm := range bundle.Manifest.Runs {
		if rm.Error != "" {
			failed++
			fmt.Printf("  %-36s FAILED: %s\n", rm.Key(), rm.Error)
			continue
		}
		total += rm.Classes
		fmt.Printf("  %-36s %3d class(es) in %5d ms\n", rm.Key(), rm.Classes, rm.WallMS)
	}
	fmt.Printf("wrote %s: %d job(s), %d Trojan class(es), %d ms wall (-j %d)\n",
		dir, len(bundle.Manifest.Runs), total, bundle.Manifest.WallMS, *jobs)

	exit := 0
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "achilles-audit: %d job(s) failed\n", failed)
		exit = 1
	}
	if *golden != "" {
		if drift := checkGolden(bundle, *golden); drift > 0 {
			fmt.Fprintf(os.Stderr, "achilles-audit: %d job(s) diverged from the golden corpus in %s\n", drift, *golden)
			exit = 1
		} else {
			fmt.Printf("golden check against %s: all optimized-mode class sets match\n", *golden)
		}
	}
	os.Exit(exit)
}

// checkGolden byte-compares every optimized-mode job's class lines against
// <dir>/<target>.golden, returning the number of diverging jobs. A missing
// golden file counts as divergence: a freshly registered target must check
// in its corpus before the audit gate passes.
func checkGolden(b *campaign.Bundle, dir string) int {
	drift := 0
	optimized := core.ModeOptimized.String()
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" || rm.Mode != optimized {
			continue
		}
		lines, _ := b.ClassLines(rm.Key())
		content := strings.Join(lines, "\n")
		if len(lines) > 0 {
			content += "\n"
		}
		want, err := os.ReadFile(filepath.Join(dir, rm.Target+".golden"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "  %-36s no golden: %v\n", rm.Key(), err)
			drift++
			continue
		}
		if string(want) != content {
			fmt.Fprintf(os.Stderr, "  %-36s class set diverged from %s.golden\n", rm.Key(), rm.Target)
			drift++
		}
	}
	return drift
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("achilles-audit diff", flag.ExitOnError)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fmt.Fprintln(os.Stderr, "achilles-audit diff: need exactly two bundle directories")
		usage(os.Stderr)
		os.Exit(2)
	}
	load := func(dir string) *campaign.Bundle {
		b, err := campaign.Read(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
			os.Exit(2)
		}
		return b
	}
	oldB, newB := load(rest[0]), load(rest[1])
	d := campaign.Diff(oldB, newB)
	fmt.Print(d.Render())
	if !d.Empty() {
		os.Exit(1)
	}
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("achilles-audit ls", flag.ExitOnError)
	fs.Parse(args)
	root := defaultRoot
	if rest := fs.Args(); len(rest) == 1 {
		root = rest[0]
	} else if len(rest) > 1 {
		fmt.Fprintln(os.Stderr, "achilles-audit ls: at most one root directory")
		usage(os.Stderr)
		os.Exit(2)
	}
	listed, err := campaign.List(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(2)
	}
	if len(listed) == 0 {
		fmt.Printf("no bundles under %s\n", root)
		return
	}
	fmt.Printf("%-40s %-20s %5s %8s %8s\n", "bundle", "created", "jobs", "classes", "wall ms")
	for _, lb := range listed {
		classes := 0
		for _, rm := range lb.Manifest.Runs {
			classes += rm.Classes
		}
		fmt.Printf("%-40s %-20s %5d %8d %8d\n",
			lb.Dir, lb.Manifest.CreatedAt, len(lb.Manifest.Runs), classes, lb.Manifest.WallMS)
	}
}
