// Command achilles-audit runs fleet-wide Trojan audits and manages the
// resulting bundles — the operational face of the campaign engine
// (internal/campaign).
//
// Usage:
//
//	achilles-audit run  [-out DIR] [-force] [-targets a,b|all] [-modes m1,m2|all] [-j N]
//	                    [-baseline DIR] [-cache FILE] [-golden DIR] [-timeout DURATION]
//	                    [-workers N] [-worker-bin PATH]
//	achilles-audit diff OLD_BUNDLE NEW_BUNDLE
//	achilles-audit ls   [ROOT]
//	achilles-audit hash BUNDLE
//
// "run" audits every selected registry target in every selected mode under
// one global -j budget and writes a versioned audit bundle (manifest.json +
// one JSONL Trojan report stream per job). With -golden it additionally
// cross-checks each optimized-mode job's class lines against the golden
// corpus (<golden>/<target>.golden) and exits 1 on divergence — the CI
// regression gate; a run truncated by a MaxStates budget counts as
// divergence too, because its class set is partial.
//
// Two flags make repeated audits of an unchanged fleet near-free:
//
//   - -baseline DIR reuses reports from a previous bundle for every job
//     whose input fingerprint (NL model sources + engine/solver/campaign
//     revisions + mode) matches a clean baseline entry; reused entries are
//     marked "cached" in the manifest. Changed, new, failed and truncated
//     jobs re-run.
//   - -cache FILE persists the solver's formula→verdict cache across
//     invocations: loaded before the run (a version-mismatched or corrupt
//     file is ignored with a notice) and saved after, so even a forced full
//     re-run starts warm. Loaded verdicts are re-verified on first use.
//
// -out refuses a directory that already contains files unless -force is
// given (which replaces the previous bundle); without -out a collision-proof
// audits/run-<timestamp> directory is created.
//
// A campaign is cancellable: -timeout DURATION maps to a context deadline
// and Ctrl-C (SIGINT) cancels. Either way the partial bundle is still
// written — jobs the cancellation caught carry an "interrupted" error in
// the manifest, the manifest itself is flagged interrupted, and the process
// exits with code 3 (distinct from 1, "audit found problems"). Interrupted
// bundles are refused as -baseline and by the -golden gate: a campaign that
// did not finish is evidence, not ground truth. The manifest is written
// atomically (temp file + rename) and last, so a bundle killed mid-write is
// unreadable rather than silently partial.
//
// With -workers N (N >= 1) the campaign runs distributed: N achilles-worker
// subprocesses are spawned (-worker-bin overrides the binary, which is
// otherwise looked up next to this executable and then on PATH) and jobs are
// sharded across them by input fingerprint, with work stealing, crash
// requeue and solver-cache delta exchange (internal/dispatch). Because job
// results are deterministic, the bundle is ContentHash-identical to an
// in-process run at every worker count. The default (0) runs in-process.
//
// "diff" compares two bundles class-by-class and exits 0 when identical,
// 1 when Trojan classes appeared, disappeared or changed, 2 on usage or
// I/O errors.
//
// "ls" lists the bundles under a root directory (default "audits") with
// their creation time, job count, class totals, a short form of their
// content hash, and an "int" marker on interrupted bundles.
//
// "hash" prints one bundle's full content hash — the digest of its stable
// content (job outcomes and report streams, not timings or timestamps) that
// CI uses to assert distributed and single-process runs agree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/dispatch"
	_ "achilles/internal/protocols"
	"achilles/internal/protocols/registry"
	"achilles/internal/solver"
)

const defaultRoot = "audits"

func usage(w *os.File) {
	fmt.Fprintln(w, "usage:")
	fmt.Fprintln(w, "  achilles-audit run  [-out DIR] [-force] [-targets a,b|all] [-modes m1,m2|all] [-j N]")
	fmt.Fprintln(w, "                      [-baseline DIR] [-cache FILE] [-golden DIR] [-timeout DURATION]")
	fmt.Fprintln(w, "                      [-workers N] [-worker-bin PATH]")
	fmt.Fprintln(w, "  achilles-audit diff OLD_BUNDLE NEW_BUNDLE")
	fmt.Fprintln(w, "  achilles-audit ls   [ROOT]")
	fmt.Fprintln(w, "  achilles-audit hash BUNDLE")
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "ls":
		cmdLs(os.Args[2:])
	case "hash":
		cmdHash(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "achilles-audit: unknown subcommand %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
}

// splitList tokenises a comma-separated flag value: tokens are trimmed and
// empty ones (doubled, leading or trailing commas, e.g. "fsp,,kv" or
// "fsp,") are dropped instead of being passed downstream, where they would
// surface as a baffling `unknown target ""` error.
func splitList(arg string) []string {
	var out []string
	for _, tok := range strings.Split(arg, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// parseModes expands a comma-separated -modes value; "all" selects every
// analysis mode. A value that contains no usable token (e.g. "," or "  ")
// is an error: silently analysing in the default mode would not be what the
// user asked for.
func parseModes(arg string) ([]core.Mode, error) {
	if arg == "all" {
		return []core.Mode{core.ModeOptimized, core.ModeNoDifferentFrom, core.ModeAPosteriori}, nil
	}
	var out []core.Mode
	for _, name := range splitList(arg) {
		m, err := core.ParseMode(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-modes %q selects no analysis mode", arg)
	}
	return out, nil
}

// parseTargets expands a comma-separated -targets value; "all" or the empty
// string selects every registered target. A non-empty value that contains
// no usable token (e.g. "," ) is an error rather than a silent "all".
func parseTargets(arg string) ([]string, error) {
	if arg == "" || arg == "all" {
		return nil, nil
	}
	out := splitList(arg)
	if len(out) == 0 {
		return nil, fmt.Errorf("-targets %q selects no target", arg)
	}
	return out, nil
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("achilles-audit run", flag.ExitOnError)
	out := fs.String("out", "", "bundle directory (default "+defaultRoot+"/run-<timestamp>)")
	force := fs.Bool("force", false, "replace an existing bundle at -out (removes its manifest and report streams first)")
	targets := fs.String("targets", "all", "comma-separated registry targets, or all")
	modes := fs.String("modes", "optimized", "comma-separated analysis modes, or all")
	jobs := fs.Int("j", runtime.NumCPU(), "global parallelism budget across the campaign")
	baseline := fs.String("baseline", "", "previous bundle dir: reuse reports for jobs whose input fingerprint is unchanged")
	cacheFile := fs.String("cache", "", "persistent solver cache file, loaded before and saved after the run")
	golden := fs.String("golden", "", "golden corpus dir to cross-check optimized-mode class sets against")
	timeout := fs.Duration("timeout", 0, "abort the campaign after this long (0 = no deadline); the partial bundle exits 3")
	workers := fs.Int("workers", 0, "run the campaign on N achilles-worker subprocesses (0 = in-process)")
	workerBin := fs.String("worker-bin", "", "worker binary for -workers (default: achilles-worker next to this executable, then PATH)")
	fs.Parse(args)

	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "achilles-audit: invalid -j %d (must be >= 1)\n", *jobs)
		fs.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "achilles-audit: invalid -workers %d (must be >= 0)\n", *workers)
		fs.Usage()
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "achilles-audit: invalid -timeout %v (must be >= 0)\n", *timeout)
		fs.Usage()
		os.Exit(2)
	}
	modeList, err := parseModes(*modes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		fs.Usage()
		os.Exit(2)
	}
	targetList, err := parseTargets(*targets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		fs.Usage()
		os.Exit(2)
	}
	sol := solver.Default()
	opts := campaign.Options{
		Targets: targetList,
		Modes:   modeList,
		Jobs:    *jobs,
		Solver:  sol,
	}
	if _, err := campaign.Plan(opts); err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		fmt.Fprintf(os.Stderr, "registered targets: %s\n", strings.Join(registry.Names(), ", "))
		os.Exit(2)
	}
	if *baseline != "" {
		base, err := campaign.Read(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit: -baseline:", err)
			os.Exit(2)
		}
		if base.Manifest.Interrupted {
			fmt.Fprintf(os.Stderr, "achilles-audit: baseline %s is from an interrupted campaign — no jobs will be reused\n", *baseline)
		}
		opts.Baseline = base
		opts.BaselineDir = *baseline
	}
	if *cacheFile != "" {
		// A missing cache file is the normal first run; a version-mismatched
		// or unreadable one means cold (and will be replaced on save) — the
		// audit must not fail because an accelerator artifact went stale.
		if loaded, err := sol.LoadCache(*cacheFile); err == nil {
			fmt.Printf("solver cache: loaded %d verdict(s) from %s\n", loaded, *cacheFile)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "achilles-audit: ignoring solver cache: %v\n", err)
		}
	}
	var coord *dispatch.Coordinator
	if *workers > 0 {
		// The fleet spawns after the cache load so the coordinator seeds every
		// worker with the warmed verdict cache; it is torn down right after
		// the campaign, before the save, so fleet-learned deltas persist.
		bin, err := findWorkerBin(*workerBin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
			os.Exit(2)
		}
		coord, err = dispatch.Start(dispatch.Config{
			Workers: *workers,
			Command: []string{bin},
			Solver:  sol,
			Stderr:  os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
			os.Exit(1)
		}
		opts.Executor = coord
		fmt.Printf("distributed: %d worker(s) running %s\n", *workers, bin)
	}
	dir := *out
	if dir == "" {
		dir, err = claimRunDir(defaultRoot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
			os.Exit(1)
		}
	} else if !*force {
		// Pre-flight the clobber check: refusing AFTER the audit would
		// throw away the whole campaign's work over a one-syscall mistake.
		if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			fmt.Fprintf(os.Stderr, "achilles-audit: %v: %s is not empty\n", campaign.ErrBundleExists, dir)
			fmt.Fprintln(os.Stderr, "achilles-audit: pass -force to replace the existing bundle")
			os.Exit(1)
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	bundle, runErr := campaign.RunCtx(ctx, opts)
	// Restore default signal handling now: the campaign is done, and a
	// second Ctrl-C must be able to kill the process during the cache save
	// and bundle flush below (the atomic manifest write makes that safe).
	stopSignals()
	if coord != nil {
		// Tear the fleet down before anything else — a cancelled campaign
		// must not leave worker processes running, and the cache save below
		// wants the final delta state.
		coord.Close()
	}
	interrupted := errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)
	if runErr != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "achilles-audit:", runErr)
		os.Exit(1)
	}
	// Persist the solver cache before anything that can still fail: the
	// verdicts are valuable even if writing the bundle errors out.
	if *cacheFile != "" {
		if err := sol.SaveCache(*cacheFile); err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		} else {
			fmt.Printf("solver cache: saved to %s\n", *cacheFile)
		}
	}
	if *force {
		err = bundle.Overwrite(dir)
	} else {
		err = bundle.Write(dir)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		if errors.Is(err, campaign.ErrBundleExists) {
			fmt.Fprintln(os.Stderr, "achilles-audit: pass -force to replace the existing bundle")
		}
		os.Exit(1)
	}

	failed, truncated, total := 0, 0, 0
	for _, rm := range bundle.Manifest.Runs {
		if rm.Error != "" {
			failed++
			fmt.Printf("  %-36s FAILED: %s\n", rm.Key(), rm.Error)
			continue
		}
		total += rm.Classes
		note := ""
		if rm.Cached {
			note = "  (cached)"
		}
		if rm.Truncated {
			truncated++
			note += "  TRUNCATED"
		}
		fmt.Printf("  %-36s %3d class(es) in %5d ms%s\n", rm.Key(), rm.Classes, rm.WallMS, note)
	}
	fmt.Printf("wrote %s: %d job(s) (%d cached), %d Trojan class(es), %d ms wall (-j %d)\n",
		dir, len(bundle.Manifest.Runs), bundle.Manifest.CachedJobs, total, bundle.Manifest.WallMS, *jobs)

	exit := 0
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "achilles-audit: %d job(s) failed\n", failed)
		exit = 1
	}
	if truncated > 0 {
		fmt.Fprintf(os.Stderr, "achilles-audit: %d job(s) truncated by MaxStates — class sets are partial\n", truncated)
	}
	if *golden != "" {
		switch {
		case bundle.Manifest.Interrupted:
			// Never certify a campaign that did not finish, even if the jobs
			// that DID run happen to match their golden corpora.
			fmt.Fprintf(os.Stderr, "achilles-audit: interrupted bundle cannot be gated against %s\n", *golden)
			exit = 1
		default:
			if drift := checkGolden(bundle, *golden); drift > 0 {
				fmt.Fprintf(os.Stderr, "achilles-audit: %d job(s) diverged from the golden corpus in %s\n", drift, *golden)
				exit = 1
			} else {
				fmt.Printf("golden check against %s: all optimized-mode class sets match\n", *golden)
			}
		}
	}
	if interrupted {
		// Distinct exit code: the bundle on disk is a partial artifact, not
		// an audit verdict.
		fmt.Fprintf(os.Stderr, "achilles-audit: campaign interrupted (%v) — partial bundle written to %s\n", runErr, dir)
		os.Exit(3)
	}
	os.Exit(exit)
}

// findWorkerBin resolves the achilles-worker binary for -workers: an
// explicit -worker-bin wins, then a sibling of this executable (the layout
// `go build -o bin/ ./...` and the CI artifacts produce), then PATH.
func findWorkerBin(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("-worker-bin: %w", err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "achilles-worker")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	if bin, err := exec.LookPath("achilles-worker"); err == nil {
		return bin, nil
	}
	return "", errors.New("achilles-worker binary not found next to this executable or on PATH; build it (go build ./cmd/achilles-worker) or pass -worker-bin")
}

// claimRunDir creates a fresh default bundle directory under root. The name
// is run-<UTC timestamp>; when two runs land in the same second the later
// one gets a .2/.3/... suffix instead of writing into the earlier bundle.
func claimRunDir(root string) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", fmt.Errorf("create %s: %w", root, err)
	}
	base := filepath.Join(root, "run-"+time.Now().UTC().Format("20060102-150405"))
	dir := base
	for n := 2; ; n++ {
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			return dir, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return "", fmt.Errorf("create bundle dir: %w", err)
		}
		dir = fmt.Sprintf("%s.%d", base, n)
	}
}

// checkGolden byte-compares every optimized-mode job's class lines against
// <dir>/<target>.golden, returning the number of diverging jobs. A missing
// golden file counts as divergence: a freshly registered target must check
// in its corpus before the audit gate passes. A truncated run counts as
// divergence even when its (partial) class set happens to match — a gate
// must never certify a corpus the analysis did not finish computing.
func checkGolden(b *campaign.Bundle, dir string) int {
	drift := 0
	optimized := core.ModeOptimized.String()
	for _, rm := range b.Manifest.Runs {
		if rm.Error != "" || rm.Mode != optimized {
			continue
		}
		if rm.Truncated {
			fmt.Fprintf(os.Stderr, "  %-36s truncated run cannot be gated\n", rm.Key())
			drift++
			continue
		}
		lines, _ := b.ClassLines(rm.Key())
		content := strings.Join(lines, "\n")
		if len(lines) > 0 {
			content += "\n"
		}
		want, err := os.ReadFile(filepath.Join(dir, rm.Target+".golden"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "  %-36s no golden: %v\n", rm.Key(), err)
			drift++
			continue
		}
		if string(want) != content {
			fmt.Fprintf(os.Stderr, "  %-36s class set diverged from %s.golden\n", rm.Key(), rm.Target)
			drift++
		}
	}
	return drift
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("achilles-audit diff", flag.ExitOnError)
	fs.Parse(args)
	rest := fs.Args()
	if len(rest) != 2 {
		fmt.Fprintln(os.Stderr, "achilles-audit diff: need exactly two bundle directories")
		usage(os.Stderr)
		os.Exit(2)
	}
	load := func(dir string) *campaign.Bundle {
		b, err := campaign.Read(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "achilles-audit:", err)
			os.Exit(2)
		}
		return b
	}
	oldB, newB := load(rest[0]), load(rest[1])
	d := campaign.Diff(oldB, newB)
	fmt.Print(d.Render())
	if !d.Empty() {
		os.Exit(1)
	}
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("achilles-audit ls", flag.ExitOnError)
	fs.Parse(args)
	root := defaultRoot
	if rest := fs.Args(); len(rest) == 1 {
		root = rest[0]
	} else if len(rest) > 1 {
		fmt.Fprintln(os.Stderr, "achilles-audit ls: at most one root directory")
		usage(os.Stderr)
		os.Exit(2)
	}
	listed, err := campaign.List(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(2)
	}
	if len(listed) == 0 {
		fmt.Printf("no bundles under %s\n", root)
		return
	}
	fmt.Printf("%-40s %-20s %5s %8s %8s  %-12s %s\n", "bundle", "created", "jobs", "classes", "wall ms", "content", "flags")
	for _, lb := range listed {
		classes := 0
		for _, rm := range lb.Manifest.Runs {
			classes += rm.Classes
		}
		// The content hash needs the report streams, so ls re-reads the full
		// bundle; one that fails validation shows "-" rather than killing
		// the listing.
		hash := "-"
		if b, err := campaign.Read(lb.Dir); err == nil {
			if h, err := b.ContentHash(); err == nil {
				hash = h[:12]
			}
		}
		flags := ""
		if lb.Manifest.Interrupted {
			flags = "interrupted"
		}
		fmt.Printf("%-40s %-20s %5d %8d %8d  %-12s %s\n",
			lb.Dir, lb.Manifest.CreatedAt, len(lb.Manifest.Runs), classes, lb.Manifest.WallMS, hash, flags)
	}
}

func cmdHash(args []string) {
	fs := flag.NewFlagSet("achilles-audit hash", flag.ExitOnError)
	fs.Parse(args)
	if len(fs.Args()) != 1 {
		fmt.Fprintln(os.Stderr, "achilles-audit hash: need exactly one bundle directory")
		usage(os.Stderr)
		os.Exit(2)
	}
	b, err := campaign.Read(fs.Args()[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(2)
	}
	h, err := b.ContentHash()
	if err != nil {
		fmt.Fprintln(os.Stderr, "achilles-audit:", err)
		os.Exit(2)
	}
	fmt.Println(h)
}
