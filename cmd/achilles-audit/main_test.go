package main

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"achilles/internal/campaign"
	"achilles/internal/core"
	"achilles/internal/dispatch"
)

// TestMain lets the test binary stand in for two executables: achilles-audit
// itself (ACHILLES_AUDIT_CLI holds the full argv, subcommand included) and
// achilles-worker (ACHILLES_WORKER_REEXEC=1, set by the shell shim handed to
// -worker-bin) — so the distributed tests below drive real coordinator →
// subprocess traffic without a separate build step. The older
// ACHILLES_AUDIT_ARGS hook (cmdRun flags only, dispatched inside
// TestUsageErrorsExit2) is untouched.
func TestMain(m *testing.M) {
	switch {
	case os.Getenv("ACHILLES_WORKER_REEXEC") == "1":
		// Checked first: workers spawned by a re-exec'd audit run inherit
		// the parent's ACHILLES_AUDIT_CLI too.
		if err := dispatch.Serve(os.Stdin, os.Stdout, dispatch.WorkerConfig{
			CrashJob:  os.Getenv("ACHILLES_WORKER_CRASH_JOB"),
			CrashOnce: os.Getenv("ACHILLES_WORKER_CRASH_ONCE"),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "achilles-worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case os.Getenv("ACHILLES_AUDIT_CLI") != "":
		os.Args = append([]string{"achilles-audit"}, strings.Split(os.Getenv("ACHILLES_AUDIT_CLI"), " ")...)
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// reexecAudit re-runs the test binary as the full achilles-audit CLI.
func reexecAudit(t *testing.T, args string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_CLI="+args)
	cmd.Env = append(cmd.Env, extraEnv...)
	return cmd
}

// workerShim writes an executable that re-enters this test binary in worker
// mode — what -worker-bin gets instead of a separately built
// cmd/achilles-worker.
func workerShim(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "achilles-worker")
	script := "#!/bin/sh\nexport ACHILLES_WORKER_REEXEC=1\nexec " + os.Args[0] + "\n"
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

// bundleHash runs `achilles-audit hash DIR` and returns the printed digest.
func bundleHash(t *testing.T, dir string) string {
	t.Helper()
	out, err := reexecAudit(t, "hash "+dir).Output()
	if err != nil {
		t.Fatalf("hash %s: %v", dir, err)
	}
	return strings.TrimSpace(string(out))
}

// TestDistributedRunMatchesSingleProcess: `run -workers 2` over real worker
// subprocesses produces a bundle whose content hash equals the in-process
// run's — the CLI-level form of the distributed determinism invariant.
func TestDistributedRunMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real audit subprocesses")
	}
	root := t.TempDir()
	single, distributed := filepath.Join(root, "single"), filepath.Join(root, "fleet")

	if out, err := reexecAudit(t, "run -targets kv,kv-fixed -j 2 -out "+single).CombinedOutput(); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out)
	}
	out, err := reexecAudit(t, "run -targets kv,kv-fixed -j 2 -workers 2 -worker-bin "+workerShim(t)+" -out "+distributed).CombinedOutput()
	if err != nil {
		t.Fatalf("distributed run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "distributed: 2 worker(s)") {
		t.Fatalf("run never announced its fleet:\n%s", out)
	}
	if h1, h2 := bundleHash(t, single), bundleHash(t, distributed); h1 != h2 {
		t.Fatalf("distributed bundle drifted: %s != %s", h2, h1)
	}
}

// TestDistributedRunSurvivesWorkerKill: with the crash hook killing one
// worker mid-job, the run still exits 0 and converges to the single-process
// content hash — the requeue path over real processes.
func TestDistributedRunSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real audit subprocesses")
	}
	root := t.TempDir()
	single, distributed := filepath.Join(root, "single"), filepath.Join(root, "fleet")
	sentinel := filepath.Join(root, "crash-once")

	if out, err := reexecAudit(t, "run -targets kv,kv-fixed,paxos -j 2 -out "+single).CombinedOutput(); err != nil {
		t.Fatalf("single-process run: %v\n%s", err, out)
	}
	out, err := reexecAudit(t,
		"run -targets kv,kv-fixed,paxos -j 2 -workers 2 -worker-bin "+workerShim(t)+" -out "+distributed,
		"ACHILLES_WORKER_CRASH_JOB=kv/optimized",
		"ACHILLES_WORKER_CRASH_ONCE="+sentinel,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("distributed run with worker kill: %v\n%s", err, out)
	}
	if _, err := os.Stat(sentinel); err != nil {
		t.Fatalf("crash sentinel missing — no worker was actually killed: %v", err)
	}
	if h1, h2 := bundleHash(t, single), bundleHash(t, distributed); h1 != h2 {
		t.Fatalf("post-kill bundle drifted: %s != %s", h2, h1)
	}
}

// TestLsShowsContentHashAndInterrupted: the listing carries each bundle's
// short content hash and flags interrupted bundles.
func TestLsShowsContentHashAndInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real audit subprocesses")
	}
	root := t.TempDir()
	clean := filepath.Join(root, "clean")
	if out, err := reexecAudit(t, "run -targets kv -j 1 -out "+clean).CombinedOutput(); err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}

	// An interrupted bundle, fabricated deterministically: a campaign under
	// an already-cancelled context writes interrupted entries.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, _ := campaign.RunCtx(ctx, campaign.Options{Targets: []string{"kv"}, Jobs: 1})
	if !b.Manifest.Interrupted {
		t.Fatal("fabricated bundle not interrupted")
	}
	if err := b.Write(filepath.Join(root, "cut-short")); err != nil {
		t.Fatal(err)
	}

	out, err := reexecAudit(t, "ls "+root).Output()
	if err != nil {
		t.Fatalf("ls: %v", err)
	}
	listing := string(out)
	short := bundleHash(t, clean)[:12]
	if !strings.Contains(listing, short) {
		t.Fatalf("ls output lacks the clean bundle's short hash %s:\n%s", short, listing)
	}
	var cleanLine, cutLine string
	for _, line := range strings.Split(listing, "\n") {
		if strings.Contains(line, "clean") {
			cleanLine = line
		}
		if strings.Contains(line, "cut-short") {
			cutLine = line
		}
	}
	if cleanLine == "" || cutLine == "" {
		t.Fatalf("ls listed neither bundle:\n%s", listing)
	}
	if strings.Contains(cleanLine, "interrupted") {
		t.Fatalf("clean bundle flagged interrupted:\n%s", cleanLine)
	}
	if !strings.Contains(cutLine, "interrupted") {
		t.Fatalf("interrupted bundle not flagged:\n%s", cutLine)
	}
}

// TestWorkersFlagValidation: -workers rejects negatives with the usage exit
// code, and a missing worker binary is a clean error, not a hung fleet.
func TestWorkersFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real audit subprocesses")
	}
	out, err := reexecAudit(t, "run -workers -1").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("-workers -1: want exit 2, got %v\n%s", err, out)
	}
	out, err = reexecAudit(t, "run -targets kv -workers 1 -worker-bin /no/such/binary -out "+filepath.Join(t.TempDir(), "x")).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("bad -worker-bin: want exit 2, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "-worker-bin") {
		t.Fatalf("error does not mention -worker-bin:\n%s", out)
	}
}

func TestParseTargetsDropsEmptyTokens(t *testing.T) {
	got, err := parseTargets("fsp,,kv")
	if err != nil || !slices.Equal(got, []string{"fsp", "kv"}) {
		t.Errorf("parseTargets(\"fsp,,kv\") = %v, %v", got, err)
	}
	got, err = parseTargets(" fsp , kv, ")
	if err != nil || !slices.Equal(got, []string{"fsp", "kv"}) {
		t.Errorf("parseTargets with spaces/trailing comma = %v, %v", got, err)
	}
	for _, all := range []string{"", "all"} {
		if got, err := parseTargets(all); got != nil || err != nil {
			t.Errorf("parseTargets(%q) = %v, %v, want nil, nil", all, got, err)
		}
	}
	for _, bad := range []string{",", ",,", " , "} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("parseTargets(%q) accepted a token-free value", bad)
		}
	}
}

func TestParseModesDropsEmptyTokens(t *testing.T) {
	got, err := parseModes("optimized,,a-posteriori,")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Mode{core.ModeOptimized, core.ModeAPosteriori}
	if !slices.Equal(got, want) {
		t.Errorf("parseModes = %v, want %v", got, want)
	}
	// An empty token must NOT silently select the default mode (ParseMode
	// maps "" to optimized — the bug this guards against).
	for _, bad := range []string{",", "", " "} {
		if _, err := parseModes(bad); err == nil {
			t.Errorf("parseModes(%q) accepted a token-free value", bad)
		}
	}
	if _, err := parseModes("optimized,nope"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestUsageErrorsExit2 re-executes the test binary as achilles-audit with
// malformed flags and asserts the process exits with the usage-error code 2
// (and not 1, the "audit found problems" code CI must distinguish it from).
func TestUsageErrorsExit2(t *testing.T) {
	if args := os.Getenv("ACHILLES_AUDIT_ARGS"); args != "" {
		cmdRun(strings.Split(args, " "))
		return
	}
	cases := map[string]string{
		"empty-targets":  "-targets ,",
		"empty-modes":    "-modes ,",
		"unknown-target": "-targets no-such-proto",
		"bad-j":          "-j 0",
		"bad-baseline":   "-baseline /no/such/bundle",
	}
	for name, args := range cases {
		name, args := name, args
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
			cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS="+args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\noutput:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code %d, want 2\noutput:\n%s", code, out)
			}
		})
	}
}

// TestClobberRefusedBeforeAuditing: an occupied -out without -force is
// refused up front (exit 1, with the -force hint) — not after minutes of
// fleet auditing whose results would then be discarded.
func TestClobberRefusedBeforeAuditing(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS=-out "+dir)
	start := time.Now()
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(string(out), "-force") {
		t.Errorf("refusal lacks the -force hint:\n%s", out)
	}
	// The pre-flight must fire before any analysis: a fleet audit takes
	// seconds even on fast hardware, the refusal must not.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("clobber refusal took %v — it ran the audit first", d)
	}
}

func TestClaimRunDirCollisionProof(t *testing.T) {
	root := t.TempDir()
	seen := map[string]bool{}
	// Three claims within the same second must yield three distinct, empty,
	// existing directories (run-<ts>, run-<ts>.2, run-<ts>.3).
	for i := 0; i < 3; i++ {
		dir, err := claimRunDir(root)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dir] {
			t.Fatalf("claimRunDir returned %s twice", dir)
		}
		seen[dir] = true
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			t.Fatalf("claimed dir %s not created: %v", dir, err)
		}
		if filepath.Dir(dir) != root {
			t.Errorf("claimed dir %s escaped root %s", dir, root)
		}
	}
}

// TestTimeoutExitsThreeWithPartialBundle: a campaign cut off by -timeout
// exits with the distinct code 3 and still leaves a readable, interrupted-
// marked bundle behind; that bundle is then refused as a -baseline (zero
// cached jobs) by a follow-up run.
func TestTimeoutExitsThreeWithPartialBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "partial")
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS=-out "+dir+" -timeout 1ms -j 2")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit 3, got %v\noutput:\n%s", err, out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("interrupted run left no manifest: %v", err)
	}
	if !strings.Contains(string(raw), `"interrupted": true`) {
		t.Fatalf("manifest not marked interrupted:\n%s", raw)
	}

	after := filepath.Join(t.TempDir(), "after")
	cmd = exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(),
		"ACHILLES_AUDIT_ARGS=-targets kv -out "+after+" -baseline "+dir+" -j 2")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("follow-up run failed: %v\noutput:\n%s", err, out)
	}
	if strings.Contains(string(out), "(cached)") {
		t.Fatalf("job reused from an interrupted baseline:\n%s", out)
	}
}

// TestGoldenGateRefusesInterruptedBundle: -golden on an interrupted
// campaign exits 3 (interrupted wins) and names the refusal — it must not
// certify the corpus of a run that did not finish.
func TestGoldenGateRefusesInterruptedBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "partial")
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(),
		"ACHILLES_AUDIT_ARGS=-out "+dir+" -timeout 1ms -j 2 -golden ../../internal/protocols/testdata")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit 3, got %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(string(out), "interrupted bundle cannot be gated") {
		t.Fatalf("golden gate did not refuse the interrupted bundle:\n%s", out)
	}
}
