package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"time"

	"achilles/internal/core"
)

func TestParseTargetsDropsEmptyTokens(t *testing.T) {
	got, err := parseTargets("fsp,,kv")
	if err != nil || !slices.Equal(got, []string{"fsp", "kv"}) {
		t.Errorf("parseTargets(\"fsp,,kv\") = %v, %v", got, err)
	}
	got, err = parseTargets(" fsp , kv, ")
	if err != nil || !slices.Equal(got, []string{"fsp", "kv"}) {
		t.Errorf("parseTargets with spaces/trailing comma = %v, %v", got, err)
	}
	for _, all := range []string{"", "all"} {
		if got, err := parseTargets(all); got != nil || err != nil {
			t.Errorf("parseTargets(%q) = %v, %v, want nil, nil", all, got, err)
		}
	}
	for _, bad := range []string{",", ",,", " , "} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("parseTargets(%q) accepted a token-free value", bad)
		}
	}
}

func TestParseModesDropsEmptyTokens(t *testing.T) {
	got, err := parseModes("optimized,,a-posteriori,")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Mode{core.ModeOptimized, core.ModeAPosteriori}
	if !slices.Equal(got, want) {
		t.Errorf("parseModes = %v, want %v", got, want)
	}
	// An empty token must NOT silently select the default mode (ParseMode
	// maps "" to optimized — the bug this guards against).
	for _, bad := range []string{",", "", " "} {
		if _, err := parseModes(bad); err == nil {
			t.Errorf("parseModes(%q) accepted a token-free value", bad)
		}
	}
	if _, err := parseModes("optimized,nope"); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestUsageErrorsExit2 re-executes the test binary as achilles-audit with
// malformed flags and asserts the process exits with the usage-error code 2
// (and not 1, the "audit found problems" code CI must distinguish it from).
func TestUsageErrorsExit2(t *testing.T) {
	if args := os.Getenv("ACHILLES_AUDIT_ARGS"); args != "" {
		cmdRun(strings.Split(args, " "))
		return
	}
	cases := map[string]string{
		"empty-targets":  "-targets ,",
		"empty-modes":    "-modes ,",
		"unknown-target": "-targets no-such-proto",
		"bad-j":          "-j 0",
		"bad-baseline":   "-baseline /no/such/bundle",
	}
	for name, args := range cases {
		name, args := name, args
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
			cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS="+args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want exit error, got %v\noutput:\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code %d, want 2\noutput:\n%s", code, out)
			}
		})
	}
}

// TestClobberRefusedBeforeAuditing: an occupied -out without -force is
// refused up front (exit 1, with the -force hint) — not after minutes of
// fleet auditing whose results would then be discarded.
func TestClobberRefusedBeforeAuditing(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS=-out "+dir)
	start := time.Now()
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(string(out), "-force") {
		t.Errorf("refusal lacks the -force hint:\n%s", out)
	}
	// The pre-flight must fire before any analysis: a fleet audit takes
	// seconds even on fast hardware, the refusal must not.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("clobber refusal took %v — it ran the audit first", d)
	}
}

func TestClaimRunDirCollisionProof(t *testing.T) {
	root := t.TempDir()
	seen := map[string]bool{}
	// Three claims within the same second must yield three distinct, empty,
	// existing directories (run-<ts>, run-<ts>.2, run-<ts>.3).
	for i := 0; i < 3; i++ {
		dir, err := claimRunDir(root)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dir] {
			t.Fatalf("claimRunDir returned %s twice", dir)
		}
		seen[dir] = true
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			t.Fatalf("claimed dir %s not created: %v", dir, err)
		}
		if filepath.Dir(dir) != root {
			t.Errorf("claimed dir %s escaped root %s", dir, root)
		}
	}
}

// TestTimeoutExitsThreeWithPartialBundle: a campaign cut off by -timeout
// exits with the distinct code 3 and still leaves a readable, interrupted-
// marked bundle behind; that bundle is then refused as a -baseline (zero
// cached jobs) by a follow-up run.
func TestTimeoutExitsThreeWithPartialBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "partial")
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(), "ACHILLES_AUDIT_ARGS=-out "+dir+" -timeout 1ms -j 2")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit 3, got %v\noutput:\n%s", err, out)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("interrupted run left no manifest: %v", err)
	}
	if !strings.Contains(string(raw), `"interrupted": true`) {
		t.Fatalf("manifest not marked interrupted:\n%s", raw)
	}

	after := filepath.Join(t.TempDir(), "after")
	cmd = exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(),
		"ACHILLES_AUDIT_ARGS=-targets kv -out "+after+" -baseline "+dir+" -j 2")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("follow-up run failed: %v\noutput:\n%s", err, out)
	}
	if strings.Contains(string(out), "(cached)") {
		t.Fatalf("job reused from an interrupted baseline:\n%s", out)
	}
}

// TestGoldenGateRefusesInterruptedBundle: -golden on an interrupted
// campaign exits 3 (interrupted wins) and names the refusal — it must not
// certify the corpus of a run that did not finish.
func TestGoldenGateRefusesInterruptedBundle(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "partial")
	cmd := exec.Command(os.Args[0], "-test.run", "TestUsageErrorsExit2")
	cmd.Env = append(os.Environ(),
		"ACHILLES_AUDIT_ARGS=-out "+dir+" -timeout 1ms -j 2 -golden ../../internal/protocols/testdata")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("want exit 3, got %v\noutput:\n%s", err, out)
	}
	if !strings.Contains(string(out), "interrupted bundle cannot be gated") {
		t.Fatalf("golden gate did not refuse the interrupted bundle:\n%s", out)
	}
}
