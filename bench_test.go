// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark reports the experiment's headline numbers as custom
// metrics; `go run ./cmd/benchtab` prints the full rows/series.
package achilles_test

import (
	"context"
	"runtime"
	"testing"

	"achilles"
	"achilles/internal/campaign"
	"achilles/internal/classic"
	"achilles/internal/core"
	"achilles/internal/experiments"
	"achilles/internal/expr"
	"achilles/internal/protocols/fsp"
	"achilles/internal/protocols/kv"
	"achilles/internal/protocols/pbft"
	"achilles/internal/solver"
	"achilles/internal/symexec"
)

// BenchmarkTable1Achilles is the Achilles column of Table 1: full analysis
// of the bounded FSP setup (80 known Trojan classes, 0 false positives).
func BenchmarkTable1Achilles(b *testing.B) {
	var tp, fp int
	for i := 0; i < b.N; i++ {
		tab, err := experiments.RunTable1(8)
		if err != nil {
			b.Fatal(err)
		}
		tp, fp = tab.AchillesTP, tab.AchillesFP
	}
	b.ReportMetric(float64(tp), "truepos")
	b.ReportMetric(float64(fp), "falsepos")
}

// BenchmarkTable1Classic is the classic-symbolic-execution column of
// Table 1: same Trojans but buried in false positives.
func BenchmarkTable1Classic(b *testing.B) {
	var tp, fp int
	for i := 0; i < b.N; i++ {
		res, err := classic.Enumerate(fsp.ServerUnit(), classic.Options{
			NumFields: fsp.NumFields,
			PerPath:   16,
		})
		if err != nil {
			b.Fatal(err)
		}
		classes := map[[3]int64]bool{}
		tp, fp = 0, 0
		for _, m := range res.Messages {
			if fsp.IsTrojan(m.Fields, false) {
				c, r, a, _ := fsp.ClassOf(m.Fields)
				classes[[3]int64{c, r, a}] = true
			} else {
				fp++
			}
		}
		tp = len(classes)
	}
	b.ReportMetric(float64(tp), "truepos")
	b.ReportMetric(float64(fp), "falsepos")
}

// BenchmarkFigure10Discovery measures the incremental discovery curve: time
// to the first Trojan report and to full coverage of the 80 classes.
func BenchmarkFigure10Discovery(b *testing.B) {
	var firstMS, lastMS float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure10()
		if err != nil {
			b.Fatal(err)
		}
		firstMS = float64(fig.Points[0].Elapsed.Microseconds()) / 1000
		lastMS = float64(fig.Points[len(fig.Points)-1].Elapsed.Microseconds()) / 1000
	}
	b.ReportMetric(firstMS, "ms-to-first")
	b.ReportMetric(lastMS, "ms-to-100pct")
}

// BenchmarkFigure11LiveSets measures the live client-predicate tracking:
// mean live set at the shortest vs longest server path lengths.
func BenchmarkFigure11LiveSets(b *testing.B) {
	var short, long float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.RunFigure11()
		if err != nil {
			b.Fatal(err)
		}
		short = fig.MeanLive[0]
		long = fig.MeanLive[len(fig.MeanLive)-1]
	}
	b.ReportMetric(short, "live-at-short")
	b.ReportMetric(long, "live-at-long")
}

// BenchmarkFuzzThroughput is the §6.2 fuzzing baseline: tests per minute on
// the concrete FSP server model plus the Trojan yield.
func BenchmarkFuzzThroughput(b *testing.B) {
	fc, err := experiments.RunFuzzComparison(b.N + 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(fc.TestsPerMin, "tests/min")
	b.ReportMetric(float64(fc.Trojans), "trojans-hit")
	b.ReportMetric(fc.ExpectedPerHour, "expected/hour")
}

// BenchmarkPhaseSplit measures the three Achilles phases on FSP.
func BenchmarkPhaseSplit(b *testing.B) {
	var client, prep, server float64
	for i := 0; i < b.N; i++ {
		ps, err := experiments.RunPhaseSplit()
		if err != nil {
			b.Fatal(err)
		}
		client = float64(ps.ClientExtract.Microseconds()) / 1000
		prep = float64(ps.Preprocess.Microseconds()) / 1000
		server = float64(ps.Server.Microseconds()) / 1000
	}
	b.ReportMetric(client, "ms-client")
	b.ReportMetric(prep, "ms-preprocess")
	b.ReportMetric(server, "ms-server")
}

// The §6.4 ablation: one benchmark per mode so `-bench Ablation` prints the
// comparison directly.
func benchmarkMode(b *testing.B, mode core.Mode) {
	var trojans, queries int
	for i := 0; i < b.N; i++ {
		run, err := core.Run(fsp.NewTarget(false), core.AnalysisOptions{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		trojans = len(run.Analysis.Trojans)
		queries = run.Analysis.SolverStats.Queries
	}
	b.ReportMetric(float64(trojans), "trojans")
	b.ReportMetric(float64(queries), "solverqueries")
}

func BenchmarkAblationOptimized(b *testing.B)       { benchmarkMode(b, core.ModeOptimized) }
func BenchmarkAblationNoDifferentFrom(b *testing.B) { benchmarkMode(b, core.ModeNoDifferentFrom) }
func BenchmarkAblationAPosteriori(b *testing.B)     { benchmarkMode(b, core.ModeAPosteriori) }

// BenchmarkPBFTAnalysis: the paper reports the PBFT analysis completes in
// seconds; here it is milliseconds.
func BenchmarkPBFTAnalysis(b *testing.B) {
	var trojans int
	for i := 0; i < b.N; i++ {
		run, err := core.Run(pbft.NewTarget(), core.AnalysisOptions{})
		if err != nil {
			b.Fatal(err)
		}
		trojans = len(run.Analysis.Trojans)
	}
	b.ReportMetric(float64(trojans), "trojans")
}

// BenchmarkMACAttackImpact: goodput of the concrete PBFT cluster without
// and under the MAC attack (§6.3).
func BenchmarkMACAttackImpact(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		every int
	}{{"baseline", 0}, {"attack-10pct", 10}, {"attack-50pct", 2}} {
		b.Run(cfg.name, func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				m := pbft.NewCluster(1, 4).AttackWorkload(2000, cfg.every)
				goodput = m.Goodput()
			}
			b.ReportMetric(goodput, "goodput")
		})
	}
}

// BenchmarkWildcardAnalysis: the §6.3 glob-aware FSP analysis (112 classes).
func BenchmarkWildcardAnalysis(b *testing.B) {
	var classes int
	for i := 0; i < b.N; i++ {
		w, err := experiments.RunWildcard()
		if err != nil {
			b.Fatal(err)
		}
		classes = w.TotalTrojans
	}
	b.ReportMetric(float64(classes), "classes")
}

// BenchmarkKVQuickstart: the §2 working example end to end.
func BenchmarkKVQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(kv.NewTarget(), core.AnalysisOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverTrojanQuery: the micro-level cost of one Trojan
// satisfiability query of the shape Achilles issues.
func BenchmarkSolverTrojanQuery(b *testing.B) {
	s := solver.Default()
	addr := expr.Var("m2")
	q := []*expr.Expr{
		expr.Lt(addr, expr.Const(100)),
		expr.Or(expr.Lt(addr, expr.Const(0)), expr.Ge(addr, expr.Const(100))),
	}
	for i := 0; i < b.N; i++ {
		if res, _ := s.Check(q); res != solver.Sat {
			b.Fatal("expected sat")
		}
	}
}

// BenchmarkSymexecFSPServer: raw symbolic exploration of the FSP server
// model without any Achilles bookkeeping.
func BenchmarkSymexecFSPServer(b *testing.B) {
	unit := fsp.ServerUnit()
	for i := 0; i < b.N; i++ {
		res, err := symexec.Run(unit, symexec.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ByStatus(symexec.StatusAccepted)) != 112 {
			b.Fatal("wrong accepting path count")
		}
	}
}

// The parallel scaling benchmarks: the full rich-corpus FSP analysis (256
// client path predicates) at increasing -j. On a multicore host the higher
// -j variants demonstrate the wall-clock win over -j 1; the reported class
// count must not move.
func benchmarkParallelAnalysis(b *testing.B, jobs int) {
	var classes int
	for i := 0; i < b.N; i++ {
		run, err := core.Run(fsp.NewRichTarget(false), core.AnalysisOptions{Parallelism: jobs})
		if err != nil {
			b.Fatal(err)
		}
		classes = len(run.Analysis.Trojans)
	}
	b.ReportMetric(float64(classes), "classes")
}

func BenchmarkParallelAnalysisJ1(b *testing.B) { benchmarkParallelAnalysis(b, 1) }
func BenchmarkParallelAnalysisJ2(b *testing.B) { benchmarkParallelAnalysis(b, 2) }
func BenchmarkParallelAnalysisJ4(b *testing.B) { benchmarkParallelAnalysis(b, 4) }
func BenchmarkParallelAnalysisJ8(b *testing.B) { benchmarkParallelAnalysis(b, 8) }

// BenchmarkParallelSymexecJ4: the raw engine frontier at -j 4 on the FSP
// server model (compare against BenchmarkSymexecFSPServer).
func BenchmarkParallelSymexecJ4(b *testing.B) {
	unit := fsp.ServerUnit()
	for i := 0; i < b.N; i++ {
		res, err := symexec.Run(unit, symexec.Options{Parallelism: 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ByStatus(symexec.StatusAccepted)) != 112 {
			b.Fatal("wrong accepting path count")
		}
	}
}

// BenchmarkSolverCacheHit: the cost of a Check answered by the sharded
// verdict cache (compare against BenchmarkSolverTrojanQuery, which pays for
// a real solve on its first iteration only).
func BenchmarkSolverCacheHit(b *testing.B) {
	s := solver.Default()
	addr := expr.Var("m2")
	q := []*expr.Expr{
		expr.Lt(addr, expr.Const(100)),
		expr.Or(expr.Lt(addr, expr.Const(0)), expr.Ge(addr, expr.Const(100))),
	}
	s.Check(q) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, _ := s.Check(q); res != solver.Sat {
			b.Fatal("expected sat")
		}
	}
	if st := s.Stats(); st.CacheHits < b.N {
		b.Fatalf("cache hits %d < %d iterations", st.CacheHits, b.N)
	}
}

// BenchmarkConcreteFSPInterpretation: concrete interpretation throughput of
// one message (the fuzzing inner loop).
func BenchmarkConcreteFSPInterpretation(b *testing.B) {
	unit := fsp.ServerUnit()
	msg := make([]int64, fsp.NumFields)
	msg[fsp.FieldCmd] = 10
	msg[fsp.FieldLen] = 2
	msg[fsp.FieldBuf] = 'a'
	msg[fsp.FieldBuf+1] = 'b'
	for i := 0; i < b.N; i++ {
		res, err := symexec.Run(unit, symexec.Options{Concrete: true, Message: msg})
		if err != nil {
			b.Fatal(err)
		}
		if res.States[0].Status != symexec.StatusAccepted {
			b.Fatal("valid message rejected")
		}
	}
}

// BenchmarkFleetCampaign audits the whole registry catalog as one campaign
// at the full CPU budget — the operational fleet-audit wall-clock
// (`achilles-audit run` / `benchtab -exp campaign`).
func BenchmarkFleetCampaign(b *testing.B) {
	var classes int
	for i := 0; i < b.N; i++ {
		bundle, err := campaign.Run(campaign.Options{Jobs: runtime.NumCPU()})
		if err != nil {
			b.Fatal(err)
		}
		classes = 0
		for _, rm := range bundle.Manifest.Runs {
			if rm.Error != "" {
				b.Fatalf("job %s: %s", rm.Key(), rm.Error)
			}
			classes += rm.Classes
		}
	}
	b.ReportMetric(float64(classes), "classes")
}

// BenchmarkFirstTrojanEarlyExit: the API v2 triage mode — a Session with
// WithFirstTrojan on the rich FSP corpus, stopping the whole fan-out at the
// first confirmed class (compare against BenchmarkParallelAnalysisJ4 for
// the full walk; `benchtab -exp firsttrojan` prints the per-target table).
func BenchmarkFirstTrojanEarlyExit(b *testing.B) {
	var found int
	for i := 0; i < b.N; i++ {
		sess, err := achilles.Start(context.Background(), fsp.NewRichTarget(false),
			achilles.WithParallelism(4), achilles.WithFirstTrojan())
		if err != nil {
			b.Fatal(err)
		}
		run, err := sess.Wait()
		if err != nil {
			b.Fatal(err)
		}
		found = len(run.Analysis.Trojans)
		if found == 0 {
			b.Fatal("early exit found nothing")
		}
	}
	b.ReportMetric(float64(found), "classes")
}
